package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fesia/internal/serve"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{
		docs: 3_000, items: 6_000, meanLen: 25, seed: 7, timeout: 2 * time.Second,
		tier: serve.Config{Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.tier.Shutdown(context.Background()) })
	return s
}

// TestServeMetricsSmoke drives load through the serving tier and scrapes
// /metrics from the ADMIN mux — the acceptance check that the observability
// pipeline (tier executors -> global sink -> Prometheus writer -> HTTP)
// shows live histograms, including the new serving-tier series.
func TestServeMetricsSmoke(t *testing.T) {
	s := testServer(t)
	s.runQueries(rand.New(rand.NewSource(1)), 128)

	mux := http.NewServeMux()
	s.registerAdmin(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET /metrics: Content-Type = %q, want text/plain exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`fesia_build_info{backend=`,
		`fesia_query_latency_seconds_bucket`,
		`fesia_kernel_dispatch_total{size_a=`,
		`fesia_serve_requests_total{outcome="admitted"}`,
		`fesia_serve_queue_depth`,
		`fesia_serve_swaps_total{outcome="ok"}`,
		`fesia_query_latency_seconds_bucket{strategy="serve"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}
}

// TestServeQueryEndpoint checks /query answers on the PUBLIC mux match the
// tier directly, and that malformed requests are rejected.
func TestServeQueryEndpoint(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	a, b := s.queryable[0], s.queryable[1]
	resp, err := http.Get(srv.URL + fmt.Sprintf("/query?items=%d,%d", a, b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
	var got struct {
		Count      int    `json:"count"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	want, err := s.tier.QueryCount(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want {
		t.Errorf("/query count = %d, want %d", got.Count, want)
	}

	for _, bad := range []string{"/query", "/query?items=x", "/query?rand=99"} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServingMuxHidesAdminSurface pins the listener split: nothing
// operational is reachable through the public mux.
func TestServingMuxHidesAdminSurface(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/", "/admin/swap"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on public mux: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDeadlineHeader checks the X-Fesia-Deadline-Ms override: valid values
// are honored, invalid ones are a 400 before any query runs.
func TestDeadlineHeader(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	url := srv.URL + fmt.Sprintf("/query?items=%d", s.queryable[0])
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("X-Fesia-Deadline-Ms", "5000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("valid deadline header: status %d, want 200", resp.StatusCode)
	}

	for _, bad := range []string{"0", "-5", "x", "600001"} {
		req, _ := http.NewRequest("GET", url, nil)
		req.Header.Set("X-Fesia-Deadline-Ms", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline header %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStatusForError pins the tier-error -> HTTP mapping: overload and
// shutdown are retryable 503s, expired deadlines 504, everything else 500.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{&serve.OverloadError{Reason: serve.ReasonShed}, http.StatusServiceUnavailable},
		{&serve.OverloadError{Reason: serve.ReasonQueueFull}, http.StatusServiceUnavailable},
		{serve.ErrShuttingDown, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, http.StatusGatewayTimeout},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusForError(c.err); got != c.want {
			t.Errorf("statusForError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestOverloadFlavorsRoundTripHTTP drives each OverloadError flavor through
// the real /query handler over HTTP and checks it arrives as a distinct 503
// body with a flavor-appropriate jittered Retry-After.
func TestOverloadFlavorsRoundTripHTTP(t *testing.T) {
	s := testServer(t)
	var reject error
	s.queryOverride = func(ctx context.Context, items ...uint32) (int, error) {
		return 0, reject
	}
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	url := srv.URL + fmt.Sprintf("/query?items=%d", s.queryable[0])

	cases := []struct {
		reason   string
		wantBody string
		minRetry int
		maxRetry int // inclusive: base + jitter - 1
	}{
		{serve.ReasonShed, "serve: overloaded (shed)", 2, 4},
		{serve.ReasonQueueFull, "serve: overloaded (queue_full)", 1, 2},
		{serve.ReasonQueueWait, "serve: overloaded (queue_wait)", 1, 1},
	}
	for _, c := range cases {
		reject = &serve.OverloadError{Reason: c.reason}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s: status %d, want 503", c.reason, resp.StatusCode)
		}
		if got := strings.TrimSpace(string(body)); got != c.wantBody {
			t.Errorf("%s: body %q, want %q", c.reason, got, c.wantBody)
		}
		ra := resp.Header.Get("Retry-After")
		sec, err := strconv.Atoi(ra)
		if err != nil || sec < c.minRetry || sec > c.maxRetry {
			t.Errorf("%s: Retry-After %q, want integer in [%d, %d]", c.reason, ra, c.minRetry, c.maxRetry)
		}
	}

	// Non-overload errors must not advertise a retry hint.
	reject = errors.New("boom")
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("plain error: status %d, want 500", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("plain error: unexpected Retry-After %q", ra)
	}
}

// TestTraceHeaderReturnsBreakdown checks X-Fesia-Trace: 1 forces capture and
// the response carries the span breakdown, while untraced requests don't.
func TestTraceHeaderReturnsBreakdown(t *testing.T) {
	s, err := newServer(serverConfig{
		docs: 3_000, items: 6_000, meanLen: 25, seed: 7, timeout: 2 * time.Second,
		tier: serve.Config{Shards: 2, TraceSample: 64, SlowQuery: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.tier.Shutdown(context.Background()) })
	mux := http.NewServeMux()
	s.registerServing(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	url := srv.URL + fmt.Sprintf("/query?items=%d,%d", s.queryable[0], s.queryable[1])

	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("X-Fesia-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query: status %d", resp.StatusCode)
	}
	var got struct {
		Count int `json:"count"`
		Trace *struct {
			TraceID string `json:"trace_id"`
			Reason  string `json:"reason"`
			Spans   []struct {
				Kind  string `json:"kind"`
				DurNs uint64 `json:"dur_ns"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("traced response has no trace object")
	}
	if got.Trace.Reason != "forced" || got.Trace.TraceID == "" {
		t.Fatalf("trace metadata mismatch: %+v", got.Trace)
	}
	kinds := map[string]bool{}
	for _, sp := range got.Trace.Spans {
		kinds[sp.Kind] = true
	}
	for _, want := range []string{"query", "queue", "scatter", "shard"} {
		if !kinds[want] {
			t.Errorf("trace breakdown missing a %q span: %+v", want, got.Trace.Spans)
		}
	}

	// The admin mux now exposes the trace endpoints, and the forced trace
	// is visible there.
	amux := http.NewServeMux()
	s.registerAdmin(amux)
	asrv := httptest.NewServer(amux)
	defer asrv.Close()
	tresp, err := http.Get(asrv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", tresp.StatusCode)
	}
	if !strings.Contains(string(tbody), got.Trace.TraceID) {
		t.Errorf("/debug/traces does not list forced trace %s", got.Trace.TraceID)
	}

	// An untraced request must not carry a trace object.
	resp2, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var plain map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["trace"]; ok {
		t.Error("untraced response carries a trace object")
	}
}

// TestAdminTraceEndpointsAbsentWhenDisabled pins that a tracing-off server
// does not mount the trace debug surface.
func TestAdminTraceEndpointsAbsentWhenDisabled(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerAdmin(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	for _, path := range []string{"/debug/traces", "/debug/slow"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing off: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestAdminSwapEndpoint hot-swaps via the admin endpoint and checks the
// generation advances and queries keep answering.
func TestAdminSwapEndpoint(t *testing.T) {
	s := testServer(t)
	mux := http.NewServeMux()
	s.registerAdmin(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/admin/swap?seed=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/swap: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/admin/swap?seed=9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /admin/swap: status %d: %s", resp.StatusCode, body)
	}
	var got struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 || s.tier.Generation() != 1 {
		t.Errorf("generation = %d / %d, want 1", got.Generation, s.tier.Generation())
	}
	if _, err := s.tier.QueryCount(context.Background(), s.queryable[0], s.queryable[1]); err != nil {
		t.Errorf("query after swap: %v", err)
	}

	// A swap from a missing snapshot file fails and leaves the tier serving.
	resp, err = http.Post(srv.URL+"/admin/swap?file=/nonexistent/corpus.fesia", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("POST /admin/swap bad file: status %d, want 500", resp.StatusCode)
	}
	if gen := s.tier.Generation(); gen != 1 {
		t.Errorf("failed swap moved generation to %d", gen)
	}
}
