// Command genkernels regenerates the specialized intersection kernel tables
// in internal/kernels (the zz_gen_*.go files).
//
// FESIA precompiles one intersection kernel per segment-size pair and per
// vector ISA (Section V-A of the paper); this command is that ahead-of-time
// compilation step for the Go reproduction. Run it from the repository root:
//
//	go run ./cmd/genkernels
//
// The generated files are checked in, so this only needs to run again when
// the generator in internal/kernels/kernelgen changes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fesia/internal/kernels/kernelgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genkernels: ")
	outDir := flag.String("out", "internal/kernels", "output directory for generated kernel files")
	flag.Parse()

	for _, spec := range kernelgen.Specs() {
		src, err := kernelgen.Generate(spec)
		if err != nil {
			log.Fatalf("generating %s: %v", spec.FileName, err)
		}
		path := filepath.Join(*outDir, spec.FileName)
		if err := os.WriteFile(path, src, 0o644); err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s (%d bytes, %s cap=%d stride=%d)\n",
			path, len(src), spec.ISA.Tag, spec.Cap, spec.Stride)
	}
}
