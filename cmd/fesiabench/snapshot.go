package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"fesia"
)

// runSnapshot is the -snapshot mode: an end-to-end durability round trip.
// It builds a corpus, persists it with the atomic checksummed writers (one
// per-set snapshot plus one whole-corpus snapshot), loads both back, verifies
// the loaded sets answer queries identically, and reports sizes and
// throughput — the offline-build hand-off the paper's deployment model
// assumes, exercised the way a production pipeline would run it.
func runSnapshot(quick bool) error {
	numSets, perSet := 256, 8192
	if quick {
		numSets, perSet = 64, 2048
	}
	dir, err := os.MkdirTemp("", "fesiabench-snapshot")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(1))
	lists := make([][]uint32, numSets)
	for i := range lists {
		lists[i] = make([]uint32, perSet)
		for j := range lists[i] {
			lists[i][j] = rng.Uint32() % (1 << 24)
		}
	}
	start := time.Now()
	corpus, err := fesia.BuildBatch(lists)
	if err != nil {
		return err
	}
	fmt.Printf("built %d sets x %d elements in %v\n", numSets, perSet,
		time.Since(start).Round(time.Millisecond))

	// Whole-corpus snapshot: one file, one trailing checksum.
	corpusPath := filepath.Join(dir, "corpus.fesia")
	start = time.Now()
	if err := fesia.WriteCorpusFile(corpusPath, corpus); err != nil {
		return err
	}
	wDur := time.Since(start)
	info, err := os.Stat(corpusPath)
	if err != nil {
		return err
	}
	fmt.Printf("corpus snapshot: %d bytes written in %v (%.0f MB/s)\n",
		info.Size(), wDur.Round(time.Millisecond),
		float64(info.Size())/wDur.Seconds()/1e6)

	start = time.Now()
	loaded, err := fesia.ReadCorpusFile(corpusPath)
	if err != nil {
		return err
	}
	rDur := time.Since(start)
	fmt.Printf("corpus load+validate: %v (%.0f MB/s)\n",
		rDur.Round(time.Millisecond), float64(info.Size())/rDur.Seconds()/1e6)

	// Single-set snapshot through the same atomic writer.
	setPath := filepath.Join(dir, "set.fesia")
	if err := fesia.WriteSetFile(setPath, corpus[0]); err != nil {
		return err
	}
	loadedSet, err := fesia.ReadSetFile(setPath)
	if err != nil {
		return err
	}

	// Verify: loaded sets must answer queries exactly like the originals.
	if len(loaded) != len(corpus) {
		return fmt.Errorf("loaded %d sets, want %d", len(loaded), len(corpus))
	}
	e := fesia.NewExecutor()
	q := corpus[0]
	want := make([]int, len(corpus))
	got := make([]int, len(corpus))
	e.IntersectCountMany(q, corpus, want)
	e.IntersectCountMany(loadedSet, loaded, got)
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("loaded corpus answers differently at set %d: %d != %d",
				i, got[i], want[i])
		}
	}
	fmt.Printf("verified: %d one-vs-many counts identical across the round trip\n", len(want))
	return nil
}
