// Serving-tier saturation ramp (-servejson): measures the sharded serving
// layer end to end — admission control, load shedding, hot swaps — rather
// than a bare kernel. The run first probes the tier's saturation throughput
// with one closed-loop worker per admission slot, then ramps CONCURRENCY:
// half the slots (below saturation), exactly the slots (at saturation), and
// 4x the slots (2x-style overload, guaranteed to overflow the admission
// queue), hot-swapping the corpus repeatedly during the overload phase.
// Closed-loop workers make the ramp meaningful on any machine — offered
// pressure scales with the tier's own capacity instead of depending on
// timer-paced request injection, which cannot reach microsecond-scale
// service rates. Built-in gates pin the robustness contract: essentially no
// overload outcomes below saturation, push-back engaged (not collapse) under
// overload with the p99 of admitted queries bounded, and zero failed
// in-flight queries across hot swaps. Results go to BENCH_serve.json.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fesia/internal/datasets"
	"fesia/internal/serve"
)

// servePhaseResult is one row of BENCH_serve.json: one load phase.
type servePhaseResult struct {
	Phase       string  `json:"phase"`
	Workers     int     `json:"workers"`      // closed-loop load generators
	OfferedQPS  float64 `json:"offered_qps"`  // attempt rate the workers sustained
	AchievedQPS float64 `json:"achieved_qps"` // admitted and answered
	Attempts    uint64  `json:"attempts"`
	OK          uint64  `json:"ok"`
	Shed        uint64  `json:"shed"`
	QueueFull   uint64  `json:"queue_full"`
	QueueWait   uint64  `json:"queue_wait"`
	Deadline    uint64  `json:"deadline_expiries"`
	Failures    uint64  `json:"failures"` // anything else: must stay 0
	P50Ms       float64 `json:"p50_ms"`   // client-side, admitted queries
	P99Ms       float64 `json:"p99_ms"`
	Swaps       uint64  `json:"swaps"` // hot swaps completed during the phase
}

// serveBenchReport is the whole BENCH_serve.json artifact.
type serveBenchReport struct {
	SaturationQPS float64            `json:"saturation_qps"`
	Shards        int                `json:"shards"`
	MaxConcurrent int                `json:"max_concurrent"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Phases        []servePhaseResult `json:"phases"`
}

// serveBenchLists generates the synthetic corpus for the serving benchmark.
func serveBenchLists(docs, items, meanLen int, seed int64) [][]uint32 {
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs: docs, NumItems: items, MeanLen: meanLen, Seed: seed,
	})
	lists := make([][]uint32, items)
	for item, lst := range corpus.Postings {
		if int(item) < len(lists) {
			lists[item] = lst
		}
	}
	return lists
}

// serveQueryPool precomputes mixed 2-4 keyword queries over the frequent
// items, so the load loop does no per-request allocation or sampling.
func serveQueryPool(lists [][]uint32, rng *rand.Rand) [][]uint32 {
	var queryable []uint32
	for item, lst := range lists {
		if len(lst) >= 8 {
			queryable = append(queryable, uint32(item))
		}
	}
	pool := make([][]uint32, 256)
	for i := range pool {
		k := 2 + i%3
		q := make([]uint32, k)
		for j := range q {
			q[j] = queryable[rng.Intn(len(queryable))]
		}
		pool[i] = q
	}
	return pool
}

// phaseCounters aggregates one phase's client-observed outcomes while the
// workers run; phaseOutcome is its copyable final reading.
type phaseCounters struct {
	attempts, ok, shed, queueFull, queueWait, deadline, failures atomic.Uint64
}

type phaseOutcome struct {
	attempts, ok, shed, queueFull, queueWait, deadline, failures uint64
}

func (pc *phaseCounters) outcome() phaseOutcome {
	return phaseOutcome{
		attempts:  pc.attempts.Load(),
		ok:        pc.ok.Load(),
		shed:      pc.shed.Load(),
		queueFull: pc.queueFull.Load(),
		queueWait: pc.queueWait.Load(),
		deadline:  pc.deadline.Load(),
		failures:  pc.failures.Load(),
	}
}

// runServePhase hammers the tier with `workers` closed-loop goroutines for
// `dur` and returns the outcome counts plus the sorted latencies (ms) of
// admitted queries.
func runServePhase(tier *serve.Tier, pool [][]uint32, dur time.Duration, workers int) (phaseOutcome, []float64) {
	var pc phaseCounters
	latCh := make(chan []float64, workers)
	var wg sync.WaitGroup
	end := time.Now().Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]float64, 0, 4096)
			qi := w
			for time.Now().Before(end) {
				q := pool[qi%len(pool)]
				qi++
				pc.attempts.Add(1)
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				t0 := time.Now()
				_, err := tier.QueryCount(ctx, q...)
				cancel()
				var oe *serve.OverloadError
				switch {
				case err == nil:
					pc.ok.Add(1)
					lats = append(lats, float64(time.Since(t0).Nanoseconds())/1e6)
				case errors.As(err, &oe):
					switch oe.Reason {
					case serve.ReasonShed:
						pc.shed.Add(1)
					case serve.ReasonQueueFull:
						pc.queueFull.Add(1)
					default:
						pc.queueWait.Add(1)
					}
					// Honor the push-back the way a real client honors
					// Retry-After: without this, rejected workers busy-spin
					// on the fast-reject path and starve the admitted
					// queries of CPU, measuring the load generator rather
					// than the tier.
					time.Sleep(200 * time.Microsecond)
				case errors.Is(err, context.DeadlineExceeded):
					pc.deadline.Add(1)
				default:
					pc.failures.Add(1)
				}
			}
			latCh <- lats
		}(w)
	}
	wg.Wait()
	close(latCh)
	var all []float64
	for l := range latCh {
		all = append(all, l...)
	}
	sort.Float64s(all)
	return pc.outcome(), all
}

func quantileMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func runServeBench(path string, quick bool) error {
	docs, items, meanLen := 20_000, 40_000, 30
	probeDur, phaseDur := 500*time.Millisecond, 1500*time.Millisecond
	if quick {
		docs, items = 8_000, 16_000
		probeDur, phaseDur = 300*time.Millisecond, 600*time.Millisecond
	}
	rng := rand.New(rand.NewSource(1))
	listsA := serveBenchLists(docs, items, meanLen, 1)
	listsB := serveBenchLists(docs, items, meanLen, 2)
	pool := serveQueryPool(listsA, rng)

	cfg := serve.Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		MaxQueueWait:  10 * time.Millisecond,
		ShedTargetP99: 5 * time.Millisecond,
		ShedInterval:  50 * time.Millisecond,
	}
	tier, err := serve.NewTier(listsA, cfg)
	if err != nil {
		return err
	}
	defer tier.Shutdown(context.Background())

	// Saturation probe: a closed loop with one worker per admission slot,
	// querying back to back. Its throughput is the tier's capacity.
	fmt.Printf("  probing saturation (%d shards, %d slots)...\n", tier.NumShards(), tier.MaxConcurrent())
	var probed atomic.Uint64
	var wg sync.WaitGroup
	probeEnd := time.Now().Add(probeDur)
	for w := 0; w < tier.MaxConcurrent(); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qi := w
			for time.Now().Before(probeEnd) {
				if _, err := tier.QueryCount(context.Background(), pool[qi%len(pool)]...); err == nil {
					probed.Add(1)
				}
				qi++
			}
		}(w)
	}
	wg.Wait()
	saturation := float64(probed.Load()) / probeDur.Seconds()
	fmt.Printf("  saturation ~%.0f qps\n", saturation)

	slots := tier.MaxConcurrent()
	report := serveBenchReport{
		SaturationQPS: saturation,
		Shards:        tier.NumShards(),
		MaxConcurrent: slots,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	for _, ph := range []struct {
		name    string
		workers int
		swaps   bool
	}{
		{"0.5x", max(1, slots/2), false},
		{"1x", slots, false},
		// Enough workers that the admission queue must overflow: every slot
		// busy, the whole queue occupied, and still two more arriving.
		{"2x", max(4*slots, slots+2*slots+2), true},
	} {
		var swaps atomic.Uint64
		swapErr := make(chan error, 1)
		stopSwaps := make(chan struct{})
		var swapWG sync.WaitGroup
		if ph.swaps {
			// Hot-swap the corpus back and forth under the 2x storm.
			swapWG.Add(1)
			go func() {
				defer swapWG.Done()
				for i := 0; ; i++ {
					select {
					case <-stopSwaps:
						return
					case <-time.After(phaseDur / 6):
					}
					src := listsB
					if i%2 == 1 {
						src = listsA
					}
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					_, err := tier.Swap(ctx, src)
					cancel()
					if err != nil {
						select {
						case swapErr <- err:
						default:
						}
						return
					}
					swaps.Add(1)
				}
			}()
		}
		pc, lats := runServePhase(tier, pool, phaseDur, ph.workers)
		if ph.swaps {
			close(stopSwaps)
			swapWG.Wait()
		}
		select {
		case err := <-swapErr:
			return fmt.Errorf("servebench: hot swap failed during %s phase: %w", ph.name, err)
		default:
		}
		r := servePhaseResult{
			Phase:       ph.name,
			Workers:     ph.workers,
			OfferedQPS:  float64(pc.attempts) / phaseDur.Seconds(),
			AchievedQPS: float64(pc.ok) / phaseDur.Seconds(),
			Attempts:    pc.attempts,
			OK:          pc.ok,
			Shed:        pc.shed,
			QueueFull:   pc.queueFull,
			QueueWait:   pc.queueWait,
			Deadline:    pc.deadline,
			Failures:    pc.failures,
			P50Ms:       quantileMs(lats, 0.50),
			P99Ms:       quantileMs(lats, 0.99),
			Swaps:       swaps.Load(),
		}
		report.Phases = append(report.Phases, r)
		fmt.Printf("  %-5s offered %8.0f qps: %8.0f ok/s, p99 %6.2fms, shed %d, queue_full %d, queue_wait %d, failures %d, swaps %d\n",
			r.Phase, r.OfferedQPS, r.AchievedQPS, r.P99Ms, r.Shed, r.QueueFull, r.QueueWait, r.Failures, r.Swaps)
	}

	if err := checkServeGates(report); err != nil {
		return err
	}
	fmt.Println("  serve gates passed")
	return writeResultsAny(path, report)
}

// checkServeGates enforces the serving tier's robustness contract on the
// measured ramp.
func checkServeGates(rep serveBenchReport) error {
	var half, sat2x servePhaseResult
	for _, p := range rep.Phases {
		switch p.Phase {
		case "0.5x":
			half = p
		case "2x":
			sat2x = p
		}
	}
	// Gate 1: below saturation the tier serves, it does not push back —
	// overload outcomes stay under 2% of attempts.
	if half.Attempts > 0 {
		rej := float64(half.Shed+half.QueueFull+half.QueueWait) / float64(half.Attempts)
		if rej > 0.02 {
			return fmt.Errorf("servebench gate: %.1f%% overload outcomes at 0.5x saturation, want < 2%%", rej*100)
		}
	}
	// Gate 2: zero non-overload failures anywhere — in particular, hot swaps
	// under the 2x storm must not fail a single in-flight query.
	for _, p := range rep.Phases {
		if p.Failures != 0 {
			return fmt.Errorf("servebench gate: %d failed queries in %s phase, want 0", p.Failures, p.Phase)
		}
	}
	// Gate 3: the 2x phase actually exercised hot swap under load.
	if sat2x.Swaps == 0 {
		return fmt.Errorf("servebench gate: no hot swap completed during the 2x phase")
	}
	// Gate 4: at 2x the tier pushes back rather than collapsing: admission
	// control or shedding engaged, and the p99 of ADMITTED queries stays
	// bounded — within the queue-wait budget plus a generous multiple of the
	// healthy p99, not growing with the backlog.
	if sat2x.Shed+sat2x.QueueFull+sat2x.QueueWait == 0 {
		return fmt.Errorf("servebench gate: 2x saturation produced zero overload outcomes (admission control never engaged)")
	}
	bound := 10.0 + 20*half.P99Ms // 10ms queue-wait budget + 20x healthy p99
	if sat2x.P99Ms > bound {
		return fmt.Errorf("servebench gate: p99 of admitted at 2x = %.2fms, want <= %.2fms (bounded, no collapse)", sat2x.P99Ms, bound)
	}
	// Gate 5: no collapse — the tier still does real work under overload.
	// This is a collapse detector, not a throughput target: overload
	// handling (rejections, queue churn, swap drains, 4x the goroutines
	// fighting for the same cores) costs real cycles, so the bar is a fifth
	// of saturation, far above what a collapsing queue delivers.
	if sat2x.AchievedQPS < rep.SaturationQPS/5 {
		return fmt.Errorf("servebench gate: achieved %.0f qps at 2x, want >= a fifth of saturation %.0f", sat2x.AchievedQPS, rep.SaturationQPS)
	}
	return nil
}
