// Command fesiabench regenerates the tables and figures of the FESIA paper's
// evaluation (Section VII) and prints them as aligned text tables.
//
// Usage:
//
//	fesiabench -all            # every experiment at default scale
//	fesiabench -exp fig7a      # one experiment
//	fesiabench -exp fig8 -quick
//	fesiabench -json           # strategy micro-benchmarks -> BENCH_intersect.json
//
// Experiments: fig4 fig5 fig6 fig7a fig7b fig8 fig9 fig10 fig11 fig12 fig13
// fig14 table2 table3. The -quick flag shrinks inputs about 10x for a fast
// smoke run; absolute times change, shapes should not.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/experiments"
	"fesia/internal/simd"
	"fesia/internal/stats"
)

type runner struct {
	quick bool
}

func (r *runner) scaleInt(n int) int {
	if r.quick {
		return max(n/10, 1000)
	}
	return n
}

func (r *runner) run(id string) *experiments.Table {
	haswell := []simd.Width{simd.WidthSSE, simd.WidthAVX}
	skylake := []simd.Width{simd.WidthSSE, simd.WidthAVX, simd.WidthAVX512}
	switch id {
	case "fig4":
		return experiments.KernelSpeedups(simd.WidthSSE, "fig4")
	case "fig5":
		return experiments.KernelSpeedups(simd.WidthAVX, "fig5")
	case "fig6":
		return experiments.KernelSpeedups(simd.WidthAVX512, "fig6")
	case "fig7a":
		return experiments.VaryInputSize("fig7a", r.sizes(), haswell)
	case "fig7b":
		return experiments.VaryInputSize("fig7b", r.sizes(), skylake)
	case "fig8":
		return experiments.SelectivitySweep("fig8", r.scaleInt(1_000_000), selectivities(), haswell)
	case "fig9":
		return experiments.SelectivitySweep("fig9", r.scaleInt(1_000_000), selectivities(),
			[]simd.Width{simd.WidthAVX512})
	case "fig10":
		return experiments.ThreeWayDensity("fig10", r.scaleInt(1_000_000),
			[]float64{0, 0.1, 0.2, 0.4, 0.6, 0.8}, simd.WidthAVX)
	case "fig11":
		return experiments.SkewSweep("fig11", r.scaleInt(320_000),
			[]float64{1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1}, simd.WidthAVX, 0.1)
	case "fig12":
		cfg := datasets.CorpusConfig{NumDocs: r.scaleInt(100_000), NumItems: r.scaleInt(200_000), MeanLen: 40, Seed: 1}
		tbl, _ := experiments.DatabaseQueryTask(cfg, 20, simd.WidthAVX)
		return tbl
	case "fig13":
		scale := 1.0
		if r.quick {
			scale = 0.1
		}
		return experiments.TriangleCountingTask(simd.WidthAVX, scale)
	case "fig14":
		return experiments.BreakdownSweep(r.scaleInt(50_000),
			[]float64{2, 4, 8, 16, 32}, []int{8, 16, 32}, simd.WidthAVX)
	case "table2":
		return experiments.Table2(r.scaleInt(1_000_000))
	case "table3":
		scale := 1.0
		if r.quick {
			scale = 0.1
		}
		return experiments.Table3(scale)
	default:
		return nil
	}
}

func (r *runner) sizes() []int {
	if r.quick {
		return []int{40_000, 80_000, 160_000, 320_000}
	}
	return []int{400_000, 800_000, 1_200_000, 1_600_000, 2_000_000, 2_400_000, 2_800_000, 3_200_000}
}

func selectivities() []float64 {
	return []float64{0, 0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1}
}

var allExperiments = []string{
	"fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "table2", "table3",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fesiabench: ")
	exp := flag.String("exp", "", "experiment id (fig4..fig14, table2, table3)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "shrink inputs ~10x for a fast run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "benchmark strategies (one-shot vs Executor) and write BENCH_intersect.json")
	batchJSON := flag.Bool("batchjson", false, "benchmark the one-vs-many batch engine and write BENCH_batch.json")
	simdJSON := flag.Bool("simdjson", false, "benchmark the assembly backend against pure Go and write BENCH_simd.json")
	hybridJSON := flag.Bool("hybridjson", false, "benchmark hybrid per-set representations against all-segmented and write BENCH_hybrid.json")
	planJSON := flag.Bool("planjson", false, "benchmark the adaptive planner against the static heuristics and write BENCH_planner.json")
	serveJSON := flag.Bool("servejson", false, "run the serving-tier saturation ramp (admission, shedding, hot swaps) and write BENCH_serve.json")
	traceJSON := flag.Bool("tracejson", false, "paired tracing-off vs tracing-on serve benchmark and write BENCH_trace.json")
	snapshot := flag.Bool("snapshot", false, "round-trip a corpus through the checksummed snapshot files and verify")
	baseline := flag.String("baseline", "", "with -json/-batchjson: fail on >15% ns/op regression vs this baseline file")
	statsDump := flag.Bool("stats", false, "enable the observability sink and dump the kernel-dispatch histogram after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *statsDump {
		core.EnableStats(stats.New())
		defer dumpKernelStats()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *list {
		fmt.Println(strings.Join(allExperiments, "\n"))
		return
	}
	if *snapshot {
		fmt.Printf("fesiabench: snapshot round trip (quick=%v)\n", *quick)
		if err := runSnapshot(*quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *hybridJSON {
		fmt.Printf("fesiabench: hybrid representation benchmarks (quick=%v)\n", *quick)
		if err := runHybridBench("BENCH_hybrid.json", *quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *planJSON {
		fmt.Printf("fesiabench: adaptive planner benchmarks (quick=%v, backend=%s)\n", *quick, simd.Backend())
		if err := runPlannerBench("BENCH_planner.json", *quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serveJSON {
		fmt.Printf("fesiabench: serving-tier saturation ramp (quick=%v, backend=%s)\n", *quick, simd.Backend())
		if err := runServeBench("BENCH_serve.json", *quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *traceJSON {
		fmt.Printf("fesiabench: trace overhead paired benchmark (quick=%v, backend=%s)\n", *quick, simd.Backend())
		if err := runTraceBench("BENCH_trace.json", *quick); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *jsonOut || *batchJSON || *simdJSON {
		var results []benchResult
		var err error
		switch {
		case *jsonOut:
			fmt.Printf("fesiabench: strategy micro-benchmarks (quick=%v)\n", *quick)
			results, err = runJSONBench("BENCH_intersect.json", *quick)
		case *batchJSON:
			fmt.Printf("fesiabench: one-vs-many batch benchmarks (quick=%v)\n", *quick)
			results, err = runBatchBench("BENCH_batch.json", *quick)
		default:
			fmt.Printf("fesiabench: SIMD backend benchmarks (quick=%v, backend=%s)\n", *quick, simd.Backend())
			results, err = runSimdBench("BENCH_simd.json", *quick)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *baseline != "" {
			fmt.Printf("\nchecking against baseline %s:\n", *baseline)
			if err := checkBaseline(results, *baseline); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	fmt.Printf("fesiabench: %s/%s, %d CPU(s), %s, quick=%v\n\n",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version(), *quick)
	r := &runner{quick: *quick}
	var ids []string
	switch {
	case *all:
		ids = allExperiments
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tbl := r.run(id)
		if tbl == nil {
			log.Fatalf("unknown experiment %q (use -list)", id)
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

// dumpKernelStats prints what the observability sink accumulated over the
// whole run: per-strategy query counts, the selectivity counters, and the
// kernel-dispatch histogram — the live measurement behind the paper's Table II
// kernel-usage analysis (see EXPERIMENTS.md). Runs as a deferred step of
// main when -stats is set.
func dumpKernelStats() {
	sink := core.StatsSink()
	if sink == nil {
		return
	}
	snap := sink.Snapshot()
	fmt.Printf("\n--- observability dump (-stats) ---\n")
	fmt.Printf("queries: merge=%d hash=%d kway=%d batch=%d cross=%d cancelled=%d\n",
		snap.Counter(stats.CtrQueriesMerge), snap.Counter(stats.CtrQueriesHash),
		snap.Counter(stats.CtrQueriesKWay), snap.Counter(stats.CtrQueriesBatch),
		snap.Counter(stats.CtrQueriesCross), snap.Counter(stats.CtrCancellations))
	lats := []struct {
		name string
		h    stats.LatHist
	}{
		{"merge", stats.LatMerge}, {"hash", stats.LatHash}, {"kway", stats.LatKWay},
		{"batch", stats.LatBatch}, {"cross", stats.LatCross},
	}
	for _, l := range lats {
		ls := snap.Latency(l.h)
		if ls.Count == 0 {
			continue
		}
		fmt.Printf("latency %-6s n=%-10d mean=%-12v p50=%-12v p99=%v\n",
			l.name, ls.Count, ls.Mean(), ls.Quantile(0.50), ls.Quantile(0.99))
	}
	if scanned := snap.Counter(stats.CtrSegmentsScanned); scanned > 0 {
		fmt.Printf("segment survival: %d pairs / %d scanned (%.4f)\n",
			snap.Counter(stats.CtrSegPairs), scanned,
			float64(snap.Counter(stats.CtrSegPairs))/float64(scanned))
	}
	if probes := snap.Counter(stats.CtrHashProbes); probes > 0 {
		fmt.Printf("hash probe survival: %d survivors / %d probes (%.4f)\n",
			snap.Counter(stats.CtrHashSurvivors), probes,
			float64(snap.Counter(stats.CtrHashSurvivors))/float64(probes))
	}
	if len(snap.Kernels) == 0 {
		fmt.Println("kernel-dispatch histogram: empty (no merge query was sampled)")
		return
	}
	var total uint64
	for _, k := range snap.Kernels {
		total += k.Count
	}
	fmt.Printf("kernel-dispatch histogram (sampled 1 in %d merge queries; %d dispatches, %d size pairs):\n",
		stats.KernelSampleRate, total, len(snap.Kernels))
	fmt.Printf("  %-18s %12s %7s\n", "kernel", "dispatches", "share")
	top := snap.Kernels
	if len(top) > 20 {
		top = top[:20]
	}
	for _, k := range top {
		fmt.Printf("  %-18s %12d %6.1f%%\n",
			fmt.Sprintf("Intersect%dx%d", k.SizeA, k.SizeB),
			k.Count, 100*float64(k.Count)/float64(total))
	}
	if rest := len(snap.Kernels) - len(top); rest > 0 {
		fmt.Printf("  (+%d more size pairs)\n", rest)
	}
}
