// Hybrid representation benchmark mode (-hybridjson): measures what the
// per-set representation heuristic (Config.Rep = RepAuto) buys over the
// all-segmented baseline on three corpus shapes, and writes
// BENCH_hybrid.json. Each scenario is built twice — once forced
// all-segmented, once with RepAuto — and both the memory footprint
// (bytes per element across the corpus) and the one-vs-many query time
// (Executor.CountMany over the whole corpus) are measured on each build.
//
//   - sparse-heavy: thousands of tiny sets scattered over a 2^30 universe.
//     RepAuto turns them into sorted arrays (4 bytes/element, no bitmap);
//     the gate requires the corpus to shrink by >= 3x.
//   - dense-heavy: sets packing 1/8 of a narrow value window. RepAuto turns
//     them into dense bitmaps and every intersection collapses to word-AND +
//     popcount; the gate requires >= 1.2x query throughput.
//   - uniform: the segmented structure's home turf (moderate density over a
//     wide span). RepAuto keeps every set segmented; reported for parity,
//     no gate beyond the representations matching.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/simd"
)

// Hybrid gates: committed BENCH_hybrid.json must show at least these wins,
// and `make benchcheck` re-measures them.
const (
	hybridMemGate   = 3.0 // sparse-heavy: segmented/hybrid bytes-per-element
	hybridSpeedGate = 1.2 // dense-heavy: segmented/hybrid CountMany ns/op
)

// hybridResult is one row of BENCH_hybrid.json: one (scenario, variant)
// corpus build with its memory footprint and batch query time.
type hybridResult struct {
	Scenario     string  `json:"scenario"`
	Variant      string  `json:"variant"` // "segmented" or "hybrid"
	Sets         int     `json:"sets"`
	Elements     int     `json:"elements"`
	BytesPerElem float64 `json:"bytes_per_elem"`
	NsPerOp      float64 `json:"ns_per_op"` // one CountMany over the corpus
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Count        int     `json:"count"` // total matches, sanity anchor
	RepArray     int     `json:"rep_array"`
	RepDense     int     `json:"rep_dense"`
	RepSegmented int     `json:"rep_segmented"`
}

// hybridScenario generates one corpus shape: a query list plus candidate
// lists.
type hybridScenario struct {
	name  string
	query []uint32
	cands [][]uint32
}

func hybridScenarios(quick bool) []hybridScenario {
	scale := 1
	if quick {
		scale = 4
	}
	rng := rand.New(rand.NewSource(17))

	// sparse-heavy: tiny sets scattered across a wide universe.
	nSparse := 2048 / scale
	sparse := make([][]uint32, nSparse)
	for i := range sparse {
		sparse[i] = datasets.GenSorted(rng, 16+rng.Intn(241), 1<<30)
	}
	sparseQ := datasets.GenSorted(rng, 8192/scale, 1<<30)

	// dense-heavy: every set fills 1/8 of one narrow 2^15 window, so the
	// span per element (8 bits) is far under the dense threshold (16).
	nDense := 256 / scale
	dense := make([][]uint32, nDense)
	for i := range dense {
		dense[i] = datasets.GenSorted(rng, 4096, 1<<15)
	}
	denseQ := datasets.GenSorted(rng, 4096, 1<<15)

	// uniform: moderate sets over a wide span — segmented territory.
	nUniform := 128 / scale
	uniform := make([][]uint32, nUniform)
	for i := range uniform {
		uniform[i] = datasets.GenSorted(rng, 4096, 1<<21)
	}
	uniformQ := datasets.GenSorted(rng, 4096, 1<<21)

	return []hybridScenario{
		{"sparse-heavy", sparseQ, sparse},
		{"dense-heavy", denseQ, dense},
		{"uniform", uniformQ, uniform},
	}
}

// buildHybridCorpus builds the query and candidates with one forced
// representation knob and reports the corpus footprint.
func buildHybridCorpus(sc hybridScenario, rep core.Rep) (q *core.Set, cands []*core.Set, res hybridResult, err error) {
	cfg := core.Config{Width: simd.WidthAVX, Rep: rep}
	all := make([][]uint32, 0, len(sc.cands)+1)
	all = append(all, sc.query)
	all = append(all, sc.cands...)
	sets, err := core.BuildSets(all, cfg)
	if err != nil {
		return nil, nil, res, err
	}
	q, cands = sets[0], sets[1:]
	totalBytes, totalElems := 0, 0
	for _, s := range sets {
		totalBytes += s.MemoryBytes()
		totalElems += s.Len()
		switch s.Rep() {
		case core.RepArray:
			res.RepArray++
		case core.RepDense:
			res.RepDense++
		default:
			res.RepSegmented++
		}
	}
	res.Scenario = sc.name
	res.Sets = len(sets)
	res.Elements = totalElems
	res.BytesPerElem = float64(totalBytes) / float64(totalElems)
	return q, cands, res, nil
}

func runHybridBench(path string, quick bool) error {
	variants := []struct {
		name string
		rep  core.Rep
	}{
		{"segmented", core.RepSegmented},
		{"hybrid", core.RepAuto},
	}
	var rows []hybridResult
	for _, sc := range hybridScenarios(quick) {
		perVariant := make([]hybridResult, 0, len(variants))
		for _, v := range variants {
			q, cands, res, err := buildHybridCorpus(sc, v.rep)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", sc.name, v.name, err)
			}
			res.Variant = v.name
			ex := core.NewExecutor()
			out := make([]int, len(cands))
			run := func() int {
				ex.CountMany(q, cands, out)
				n := 0
				for _, c := range out {
					n += c
				}
				return n
			}
			res.Count = run() // warm executor scratch outside the measurement
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					run()
				}
			})
			res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
			res.AllocsPerOp = r.AllocsPerOp()
			fmt.Printf("  %-24s %10.2f B/elem %14.1f ns/op %6d allocs/op  (seg=%d arr=%d dense=%d)\n",
				sc.name+"/"+v.name, res.BytesPerElem, res.NsPerOp, res.AllocsPerOp,
				res.RepSegmented, res.RepArray, res.RepDense)
			perVariant = append(perVariant, res)
		}
		seg, hyb := perVariant[0], perVariant[1]
		if seg.Count != hyb.Count {
			return fmt.Errorf("%s: hybrid corpus counts %d matches, segmented %d — representations disagree",
				sc.name, hyb.Count, seg.Count)
		}
		memRatio := seg.BytesPerElem / hyb.BytesPerElem
		speedRatio := seg.NsPerOp / hyb.NsPerOp
		fmt.Printf("  %-24s mem %5.2fx  speed %5.2fx\n", sc.name+" hybrid vs seg", memRatio, speedRatio)
		switch sc.name {
		case "sparse-heavy":
			if memRatio < hybridMemGate {
				return fmt.Errorf("sparse-heavy memory ratio %.2fx below the %.1fx gate (seg %.2f B/elem, hybrid %.2f B/elem)",
					memRatio, hybridMemGate, seg.BytesPerElem, hyb.BytesPerElem)
			}
			if hyb.RepArray < len(hybridScenarios(quick)[0].cands) {
				return fmt.Errorf("sparse-heavy: heuristic picked only %d arrays", hyb.RepArray)
			}
		case "dense-heavy":
			if speedRatio < hybridSpeedGate {
				return fmt.Errorf("dense-heavy speed ratio %.2fx below the %.1fx gate (seg %.0f ns/op, hybrid %.0f ns/op)",
					speedRatio, hybridSpeedGate, seg.NsPerOp, hyb.NsPerOp)
			}
			if hyb.RepDense != hyb.Sets {
				return fmt.Errorf("dense-heavy: heuristic picked dense for %d of %d sets", hyb.RepDense, hyb.Sets)
			}
		case "uniform":
			if hyb.RepSegmented != hyb.Sets {
				return fmt.Errorf("uniform: heuristic left %d of %d sets segmented", hyb.RepSegmented, hyb.Sets)
			}
		}
		rows = append(rows, seg, hyb)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
