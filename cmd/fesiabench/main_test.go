package main

import "testing"

func TestRunnerKnownExperiments(t *testing.T) {
	r := &runner{quick: true}
	// Run the cheapest experiments end to end; shapes are asserted in
	// internal/experiments, here we check the CLI wiring.
	for _, id := range []string{"fig14", "table2"} {
		tbl := r.run(id)
		if tbl == nil {
			t.Fatalf("run(%q) = nil", id)
		}
		if tbl.ID != id || len(tbl.Rows) == 0 {
			t.Errorf("run(%q): id=%q rows=%d", id, tbl.ID, len(tbl.Rows))
		}
		if tbl.String() == "" {
			t.Errorf("run(%q) renders empty", id)
		}
	}
}

func TestRunnerUnknownExperiment(t *testing.T) {
	r := &runner{}
	if tbl := r.run("fig99"); tbl != nil {
		t.Errorf("unknown id returned %v", tbl)
	}
}

func TestAllExperimentsListed(t *testing.T) {
	want := map[string]bool{
		"fig4": true, "fig5": true, "fig6": true, "fig7a": true, "fig7b": true,
		"fig8": true, "fig9": true, "fig10": true, "fig11": true, "fig12": true,
		"fig13": true, "fig14": true, "table2": true, "table3": true,
	}
	if len(allExperiments) != len(want) {
		t.Fatalf("allExperiments has %d entries, want %d", len(allExperiments), len(want))
	}
	for _, id := range allExperiments {
		if !want[id] {
			t.Errorf("unexpected experiment id %q", id)
		}
	}
}

func TestQuickScaling(t *testing.T) {
	r := &runner{quick: true}
	if got := r.scaleInt(1_000_000); got != 100_000 {
		t.Errorf("scaleInt quick = %d", got)
	}
	if got := r.scaleInt(5000); got != 1000 {
		t.Errorf("scaleInt floor = %d", got)
	}
	full := &runner{}
	if got := full.scaleInt(1_000_000); got != 1_000_000 {
		t.Errorf("scaleInt full = %d", got)
	}
	if len(r.sizes()) != 4 || len(full.sizes()) != 8 {
		t.Error("size ladders wrong")
	}
}
