// Planner benchmark mode (-planjson): measures what the adaptive strategy
// planner buys over the static size heuristics on two corpus shapes, and
// writes BENCH_planner.json. Each scenario runs the one-vs-many batch engine
// (Executor.CountMany over the whole corpus) twice — once with the planner
// off (the paper's static skew cutover) and once with a learned model that is
// trained on the corpus first — and gates on the ratio.
//
//   - crossover: a segmented query against a shuffled mix of two mispriced
//     candidate shapes. Dense-bitmap candidates with den.n just under the
//     query size: the smaller-side rule probes from the dense set, paying a
//     hash probe (~8ns) per dense bit, when bit-testing the query's elements
//     against the dense span (~2-3ns each) is far cheaper — the size rule
//     assumes the two probe directions cost the same per element, and they
//     do not. Plus segmented candidates sized just above the SkewThreshold
//     cutover (small/large in [1/4, ~0.29)), where the static rule says merge
//     but this machine's measured merge/hash crossover sits near 1/3, so hash
//     is the faster arm across the band. The planner measures both arms of
//     both decisions and flips them. Gate: learned >= 1.10x static
//     throughput.
//   - uniform: equal-sized segmented candidates over the full span — the
//     static heuristic already picks the right strategy, so the planner must
//     match it. Gate: learned >= 0.98x static (the table lookup, sampling
//     clocks and residual exploration may cost at most 2%).
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/planner"
	"fesia/internal/simd"
)

// Planner gates: committed BENCH_planner.json must show at least these
// ratios, and `make benchcheck` re-measures them.
const (
	planCrossoverGate = 1.10 // crossover: static/learned CountMany ns/op
	// uniform floor: the planner's target is within 2% of static (the
	// committed full-scale BENCH_planner.json shows ~1.01); the re-measured
	// floor is looser because back-to-back -quick runs on a shared 1-CPU
	// container wobble ±4% run-to-run — the gate exists to catch the planner
	// grossly getting in the way, not to re-certify the 2% target.
	planUniformGate = 0.95
)

// planTrainRounds is how many passes over the corpus the learned model sees
// before the measured run. Sampling the chosen arm alone is enough to flip a
// mispriced cell (its measured cost rises past the other arm's prior), so a
// handful of passes converges the EWMA; exploration then keeps the
// road-not-taken estimates honest.
const planTrainRounds = 24

// planResult is one row of BENCH_planner.json: one (scenario, variant) run.
type planResult struct {
	Scenario     string  `json:"scenario"`
	Variant      string  `json:"variant"` // "static" or "learned"
	Backend      string  `json:"backend"`
	Sets         int     `json:"sets"`
	QueryLen     int     `json:"query_len"`
	NsPerOp      float64 `json:"ns_per_op"` // one CountMany over the corpus
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Count        int     `json:"count"`         // total matches, sanity anchor
	LearnedCells int     `json:"learned_cells"` // cost cells with samples (learned only)
}

type planScenario struct {
	name  string
	query *core.Set
	cands []*core.Set
}

func planScenarios(quick bool) ([]planScenario, error) {
	scale := 1
	if quick {
		scale = 2
	}
	rng := rand.New(rand.NewSource(23))
	segCfg := core.Config{Width: simd.WidthAVX, Rep: core.RepSegmented}
	denCfg := core.Config{Width: simd.WidthAVX, Rep: core.RepDense}

	// crossover: a segmented query; half the candidates segmented in the
	// mispriced skew band [1/4, ~0.29), half dense bitmaps with den.n in
	// [0.4, 0.9) of the query size (packed at 1/4 fill into narrow windows),
	// shuffled together so the batch interleaves both decision kinds.
	qn := 65_536
	nSeg := 96 / scale
	segRaw := make([][]uint32, 1, nSeg+1)
	segRaw[0] = datasets.GenSorted(rng, qn, 1<<22)
	for i := 0; i < nSeg; i++ {
		cn := qn/4 + rng.Intn(qn/25)
		segRaw = append(segRaw, datasets.GenSorted(rng, cn, 1<<22))
	}
	segSets, err := core.BuildSets(segRaw, segCfg)
	if err != nil {
		return nil, err
	}
	nDen := 96 / scale
	denRaw := make([][]uint32, nDen)
	for i := range denRaw {
		dn := 2*qn/5 + rng.Intn(qn/2)
		base := uint32(rng.Intn(1 << 21))
		v := datasets.GenSorted(rng, dn, uint32(4*dn))
		for j := range v {
			v[j] += base
		}
		denRaw[i] = v
	}
	denSets, err := core.BuildSets(denRaw, denCfg)
	if err != nil {
		return nil, err
	}
	crossQ := segSets[0]
	cross := append(append([]*core.Set{}, segSets[1:]...), denSets...)
	rng.Shuffle(len(cross), func(i, j int) { cross[i], cross[j] = cross[j], cross[i] })

	// uniform: equal-sized segmented candidates over the same wide span. Size
	// ratio 1 keeps the static cutover on merge, which is also what
	// measurement finds — the planner must simply not get in the way.
	nUniform := 96 / scale
	uniRaw := make([][]uint32, 1, nUniform+1)
	uniRaw[0] = datasets.GenSorted(rng, qn, 1<<22)
	for i := 0; i < nUniform; i++ {
		uniRaw = append(uniRaw, datasets.GenSorted(rng, qn, 1<<22))
	}
	uniSets, err := core.BuildSets(uniRaw, segCfg)
	if err != nil {
		return nil, err
	}

	return []planScenario{
		{"crossover", crossQ, cross},
		{"uniform", uniSets[0], uniSets[1:]},
	}, nil
}

// runPlanVariant measures one CountMany-over-the-corpus configuration. When m
// is non-nil the executor consults it, and the corpus is replayed
// planTrainRounds times (then re-fit) before the measured run.
func runPlanVariant(q *core.Set, cands []*core.Set, m *planner.Model) (res planResult, out []int) {
	ex := core.NewExecutor()
	if m != nil {
		ex.EnablePlanner(m)
	}
	out = make([]int, len(cands))
	run := func() int {
		ex.CountMany(q, cands, out)
		n := 0
		for _, c := range out {
			n += c
		}
		return n
	}
	res.Count = run() // warm executor scratch outside the measurement
	if m != nil {
		for i := 0; i < planTrainRounds; i++ {
			run()
			m.Refit()
		}
		res.LearnedCells = len(m.Snapshot().Cells)
	}
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			run()
		}
	})
	res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	res.AllocsPerOp = r.AllocsPerOp()
	res.Backend = simd.Backend()
	res.Sets = len(cands)
	return res, out
}

func runPlannerBench(path string, quick bool) error {
	scenarios, err := planScenarios(quick)
	if err != nil {
		return err
	}
	var rows []planResult
	for _, sc := range scenarios {
		q, cands := sc.query, sc.cands

		static, staticOut := runPlanVariant(q, cands, nil)
		static.Scenario, static.Variant, static.QueryLen = sc.name, "static", q.Len()
		fmt.Printf("  %-20s %14.1f ns/op %6d allocs/op  count=%d\n",
			sc.name+"/static", static.NsPerOp, static.AllocsPerOp, static.Count)

		// Exploration is widened from the 1/64 default: the measured run keeps
		// exploring, and at 1/512 the dispreferred arm costs the uniform
		// scenario well under its 2% budget while training still measures each
		// cell's road-not-taken dozens of times.
		m := planner.New(planner.WithMode(planner.ModeLearned), planner.WithExploreEvery(512))
		learned, learnedOut := runPlanVariant(q, cands, m)
		learned.Scenario, learned.Variant, learned.QueryLen = sc.name, "learned", q.Len()
		fmt.Printf("  %-20s %14.1f ns/op %6d allocs/op  count=%d cells=%d\n",
			sc.name+"/learned", learned.NsPerOp, learned.AllocsPerOp, learned.Count, learned.LearnedCells)

		if !slices.Equal(staticOut, learnedOut) {
			return fmt.Errorf("%s: learned per-candidate counts disagree with static", sc.name)
		}
		ratio := static.NsPerOp / learned.NsPerOp
		fmt.Printf("  %-20s %5.2fx\n", sc.name+" learned vs static", ratio)
		switch sc.name {
		case "crossover":
			if ratio < planCrossoverGate {
				return fmt.Errorf("crossover speedup %.2fx below the %.2fx gate (static %.0f ns/op, learned %.0f ns/op)",
					ratio, planCrossoverGate, static.NsPerOp, learned.NsPerOp)
			}
		case "uniform":
			if ratio < planUniformGate {
				return fmt.Errorf("uniform ratio %.2fx below the %.2fx floor (static %.0f ns/op, learned %.0f ns/op)",
					ratio, planUniformGate, static.NsPerOp, learned.NsPerOp)
			}
		}
		rows = append(rows, static, learned)
	}
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
