// Trace-overhead paired benchmark (-tracejson): measures what the tracing
// layer costs the serving tier. Two identical tiers serve the same query
// stream — one with tracing off (the nil-check fast path), one with tracing
// at the default 1-in-64 head sampling plus tail capture — and their
// single-stream serve latencies are compared round by round. Rounds
// interleave off/on so frequency scaling and cache state drift hit both arms
// equally; per-round medians of the per-query mean defeat outliers. The gate
// pins the PR's headline contract: tracing on at default sampling costs at
// most a few percent, and a forced capture still answers correctly. Results
// go to BENCH_trace.json.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fesia/internal/serve"
)

// traceBenchArm is one arm's aggregated reading in BENCH_trace.json.
type traceBenchArm struct {
	Name       string    `json:"name"`
	MeanNsOp   float64   `json:"mean_ns_op"`   // median across rounds of per-round mean
	RoundsNsOp []float64 `json:"rounds_ns_op"` // per-round means, in run order
}

// traceBenchReport is the whole BENCH_trace.json artifact.
type traceBenchReport struct {
	Rounds        int           `json:"rounds"`
	QueriesPerRnd int           `json:"queries_per_round"`
	SampleN       int           `json:"trace_sample_n"`
	Off           traceBenchArm `json:"off"`
	On            traceBenchArm `json:"on"`
	OverheadRatio float64       `json:"overhead_ratio"` // on / off, of the medians
	GateMaxRatio  float64       `json:"gate_max_ratio"`
}

// runTraceRound serves `queries` queries from the pool through each tier,
// interleaved in small alternating chunks so slow drift (frequency
// transitions, noisy neighbors) lands on both arms equally, and returns the
// mean ns per query for each arm.
func runTraceRound(off, on *serve.Tier, pool [][]uint32, queries int) (offNs, onNs float64, err error) {
	const chunk = 500
	ctx := context.Background()
	var offTot, onTot time.Duration
	runChunk := func(tier *serve.Tier, base, n int) (time.Duration, error) {
		start := time.Now()
		for i := base; i < base+n; i++ {
			if _, err := tier.QueryCount(ctx, pool[i%len(pool)]...); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	for done := 0; done < queries; done += chunk {
		n := min(chunk, queries-done)
		d, err := runChunk(off, done, n)
		if err != nil {
			return 0, 0, err
		}
		offTot += d
		if d, err = runChunk(on, done, n); err != nil {
			return 0, 0, err
		}
		onTot += d
	}
	q := float64(queries)
	return float64(offTot.Nanoseconds()) / q, float64(onTot.Nanoseconds()) / q, nil
}

func runTraceBench(path string, quick bool) error {
	// Posting lists average docs*meanLen/items ≈ 2000 documents — the paper's
	// regime, where a query does real intersection work per shard. On a toy
	// corpus the serve path is pure scatter overhead and any fixed per-query
	// cost reads as a huge ratio.
	// Rounds must be long enough (tens of ms) that CPU frequency
	// transitions average out inside a round instead of landing on one arm.
	docs, items, meanLen := 200_000, 4_000, 40
	rounds, queries := 9, 20_000
	if quick {
		docs, items = 80_000, 2_000
		rounds, queries = 5, 3_000
	}
	const sampleN = 64
	lists := serveBenchLists(docs, items, meanLen, 1)
	pool := serveQueryPool(lists, rand.New(rand.NewSource(1)))

	base := serve.Config{ShedTargetP99: -1} // isolate the trace seams from shed jitter
	traced := base
	traced.TraceSample = sampleN
	traced.SlowQuery = 50 * time.Millisecond

	tierOff, err := serve.NewTier(lists, base)
	if err != nil {
		return err
	}
	defer tierOff.Shutdown(context.Background())
	tierOn, err := serve.NewTier(lists, traced)
	if err != nil {
		return err
	}
	defer tierOn.Shutdown(context.Background())

	// Warm both tiers past build and first-touch noise before measuring.
	if _, _, err := runTraceRound(tierOff, tierOn, pool, queries/4); err != nil {
		return err
	}

	rep := traceBenchReport{
		Rounds: rounds, QueriesPerRnd: queries, SampleN: sampleN,
		Off:          traceBenchArm{Name: "tracing-off"},
		On:           traceBenchArm{Name: fmt.Sprintf("tracing-1-in-%d", sampleN)},
		GateMaxRatio: 1.05,
	}
	var ratios []float64
	for r := 0; r < rounds; r++ {
		off, on, err := runTraceRound(tierOff, tierOn, pool, queries)
		if err != nil {
			return err
		}
		rep.Off.RoundsNsOp = append(rep.Off.RoundsNsOp, off)
		rep.On.RoundsNsOp = append(rep.On.RoundsNsOp, on)
		ratios = append(ratios, on/off)
		fmt.Printf("  round %d/%d: off %7.0f ns/q, on %7.0f ns/q (%.3fx)\n", r+1, rounds, off, on, on/off)
	}
	rep.Off.MeanNsOp = medianOf(rep.Off.RoundsNsOp)
	rep.On.MeanNsOp = medianOf(rep.On.RoundsNsOp)
	// Gate on the median of per-round ratios: each round's two arms run
	// interleaved, so the ratio is immune to drift between rounds.
	rep.OverheadRatio = medianOf(ratios)
	fmt.Printf("  median: off %.0f ns/q, on %.0f ns/q — tracing overhead %.1f%% (median of per-round ratios)\n",
		rep.Off.MeanNsOp, rep.On.MeanNsOp, 100*(rep.OverheadRatio-1))

	// Sanity: the traced tier still answers, and a forced capture carries a
	// breakdown (the paired numbers are meaningless if the on arm traces
	// nothing).
	n, capd, err := tierOn.QueryCountTraced(context.Background(), pool[0]...)
	if err != nil || capd == nil || len(capd.Spans) == 0 {
		return fmt.Errorf("tracebench: forced capture broken (n=%d, capd=%v, err=%v)", n, capd, err)
	}

	if rep.OverheadRatio > rep.GateMaxRatio {
		return fmt.Errorf("tracebench gate: tracing overhead %.3fx exceeds %.2fx", rep.OverheadRatio, rep.GateMaxRatio)
	}
	fmt.Println("  trace overhead gate passed")
	return writeResultsAny(path, rep)
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}
