// Batch benchmark mode (-batchjson): measures the one-vs-many batch engine
// against the equivalent pairwise query loop and writes BENCH_batch.json.
// Two distributions at three candidate-list lengths:
//
//   - skewed: a small query against uniformly larger candidates — the hash
//     strategy's regime, where the batch engine memoizes the query's hash
//     positions across same-sized candidates and stages probes in
//     branch-free blocks.
//   - uniform: query and candidates the same size — the merge strategy's
//     regime, run through the staged two-pass dispatch.
//
// The pairwise baseline is the loop a caller would otherwise write: one
// Executor.Count per candidate on a warm executor.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/simd"
)

// batchParallelTolerance is how much slower than serial batch the
// batch-parallel variant may measure before runBatchBench fails: the
// work-size cutover should route any batch where the pool cannot pay for
// itself onto the serial path, so a large gap means the cutover is broken.
const batchParallelTolerance = 1.25

// batchDistribution describes one corpus shape of the batch benchmark.
type batchDistribution struct {
	name string
	qLen int // query set size
	cLen int // size of every candidate set
}

func runBatchBench(path string, quick bool) ([]benchResult, error) {
	scale := 1
	if quick {
		scale = 4
	}
	dists := []batchDistribution{
		// 1:8 skew keeps the adaptive switch on the hash strategy with the
		// query as the probing side.
		{"skewed", 1024 / scale, 8192 / scale},
		{"uniform", 4096 / scale, 4096 / scale},
	}
	candCounts := []int{16, 256, 4096}
	universe := uint32(1 << 21)
	workers := min(runtime.GOMAXPROCS(0), 4)
	cfg := core.Config{Width: simd.WidthAVX}

	results := make([]benchResult, 0, len(dists)*len(candCounts)*3)
	for _, d := range dists {
		rng := rand.New(rand.NewSource(7))
		q := core.MustNewSet(datasets.GenSorted(rng, d.qLen, universe), cfg)
		// Build the largest candidate list once (arena-backed); smaller
		// counts reuse its prefix.
		maxCand := candCounts[len(candCounts)-1]
		lists := make([][]uint32, maxCand)
		for i := range lists {
			lists[i] = datasets.GenSorted(rng, d.cLen, universe)
		}
		allCands, err := core.BuildSets(lists, cfg)
		if err != nil {
			return nil, fmt.Errorf("building %s candidates: %w", d.name, err)
		}
		for _, nc := range candCounts {
			cands := allCands[:nc]
			out := make([]int, nc)
			ex := core.NewExecutor()
			variants := []benchCase{
				{fmt.Sprintf("%s/c%d/pairwise", d.name, nc), func() int {
					n := 0
					for j, c := range cands {
						out[j] = ex.Count(q, c)
						n += out[j]
					}
					return n
				}},
				{fmt.Sprintf("%s/c%d/batch", d.name, nc), func() int {
					ex.CountMany(q, cands, out)
					n := 0
					for _, v := range out {
						n += v
					}
					return n
				}},
				{fmt.Sprintf("%s/c%d/batch-parallel", d.name, nc), func() int {
					ex.CountManyParallel(q, cands, out, workers)
					n := 0
					for _, v := range out {
						n += v
					}
					return n
				}},
			}
			want := -1
			for _, v := range variants {
				r, count := measure(v)
				if want == -1 {
					want = count
				} else if count != want {
					return nil, fmt.Errorf("%s disagrees: %d matches, want %d", v.name, count, want)
				}
				results = append(results, r)
				fmt.Printf("  %-28s %14.1f ns/op %6d allocs/op\n",
					r.Strategy, r.NsPerOp, r.AllocsPerOp)
			}
			pair, batch := results[len(results)-3], results[len(results)-2]
			fmt.Printf("  %-28s %14.2fx\n", d.name+" batch speedup", pair.NsPerOp/batch.NsPerOp)
			// Cutover gate: with the work-size cutover in CountManyParallel,
			// batch-parallel must never be meaningfully slower than serial
			// batch — small batches route to the serial path, large ones must
			// win or tie. The tolerance absorbs timer noise at the
			// microsecond scenarios.
			if par := results[len(results)-1]; par.NsPerOp > batch.NsPerOp*batchParallelTolerance {
				return nil, fmt.Errorf("%s: batch-parallel %.0f ns/op is %.2fx serial batch %.0f ns/op (tolerance %.2fx) — cutover regression",
					par.Strategy, par.NsPerOp, par.NsPerOp/batch.NsPerOp, batch.NsPerOp, batchParallelTolerance)
			}
		}
	}
	return results, writeResults(path, results)
}

// measure runs one case under testing.Benchmark after a warm-up call.
func measure(c benchCase) (benchResult, int) {
	count := c.run() // warm executor scratch outside the measurement
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			c.run()
		}
	})
	return benchResult{
		Strategy:    c.name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Count:       count,
	}, count
}
