// SIMD backend benchmark mode (-simdjson): measures every dispatched assembly
// routine against its pure-Go reference on the same inputs and writes one row
// per ladder tier to BENCH_simd.json. Each routine appears up to three times —
// "<name>/avx512", "<name>/avx2" and "<name>/go" — toggled via
// simd.SetAsmEnabled / simd.SetAvx512Enabled / kernels.UseAsmKernels, so the
// file documents exactly what each rung of the ISA ladder buys on the build
// machine. The mode also enforces structural gates at generation time: the
// fused bitmap-filter kernel must beat the pure-Go loop by
// simdFilterMinSpeedup, the end-to-end merge count must not be slower with
// the backend on, and — only on AVX-512 hardware — the compress-store
// materialize kernel must beat the AVX2 tier by simdMaterializeMinSpeedup and
// the gathered hash probe must beat the scalar probe loop by
// simdProbeMinSpeedup. Gates whose tier the machine lacks are skipped, not
// failed: on machines without any assembly backend the mode degrades to
// writing go-only rows.
package main

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/hashutil"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// simdFilterMinSpeedup is the acceptance floor for the fused bitmap-filter
// microbenchmark: asm must be at least this many times faster than pure Go.
const simdFilterMinSpeedup = 1.5

// simdEndToEndMaxRatio caps the asm/go ns ratio of the end-to-end merge
// count: the backend must deliver a measurable win, so asm may take at most
// this fraction of the pure-Go time (a little above 1.0 would only allow
// parity; 0.97 demands a real improvement while absorbing timer noise).
const simdEndToEndMaxRatio = 0.97

// simdMaterializeMinSpeedup is the AVX-512-only acceptance floor for the
// ordered-intersect materialize kernel: the avx512 tier (compress-store)
// must beat the avx2 tier (which has no vector materialize and runs the
// generated scalar kernels) by at least this factor on 16x16 segments.
const simdMaterializeMinSpeedup = 1.2

// simdProbeMinSpeedup is the AVX-512-only acceptance floor for the gathered
// hash probe: one VPGATHERDD probe stage must beat the scalar
// hash-test-compress loop by at least this factor.
const simdProbeMinSpeedup = 1.15

// probeStageGo is the scalar reference for the gathered probe stage: hash
// each element, test its bitmap bit, compress survivors (element and
// position) to the out slices. It mirrors internal/core's scalar probe loop
// so the avx512/go row pair measures exactly what VPGATHERDD replaces.
func probeStageGo(elems []uint32, words []uint64, h hashutil.Hasher, posMask uint64, outE, outP []uint32) int {
	n := 0
	for _, x := range elems {
		pos := h.Hash(x) & posMask
		if words[pos>>6]>>(pos&63)&1 != 0 {
			outE[n] = x
			outP[n] = uint32(pos)
			n++
		}
	}
	return n
}

func runSimdBench(path string, quick bool) ([]benchResult, error) {
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(3))

	// Microbenchmark inputs: one 64 KiB bitmap pair per side for the fused
	// filter, mixed-density words so the mask stream has structure.
	const nblocks = 256
	aw := make([]uint64, nblocks*simd.BlockWords)
	bw := make([]uint64, nblocks*simd.BlockWords)
	for i := range aw {
		aw[i] = rng.Uint64() & rng.Uint64()
		bw[i] = rng.Uint64() & rng.Uint64()
	}
	masks := make([]uint32, nblocks)

	smallA := []uint32{3, 9, 17, 22, 31, 40, 51, 63}
	smallB := []uint32{1, 9, 18, 22, 35, 40}
	longList := make([]uint32, 48)
	for i := range longList {
		longList[i] = uint32(i * 3)
	}

	// 16x16 segment pair for the materialize kernel: the zmm-register sizes
	// only the AVX-512 rung serves with a vector kernel.
	seg16a := make([]uint32, 16)
	seg16b := make([]uint32, 16)
	for i := range seg16a {
		seg16a[i] = uint32(i * 5)
		seg16b[i] = uint32(i*5 + i%3) // overlaps on i%3==0
	}
	var seg16dst [16]uint32

	// Gathered-probe inputs: two probe blocks of elements against a 64 Kbit
	// bitmap, roughly half survivors.
	const probeN = 128
	probeElems := make([]uint32, probeN)
	for i := range probeElems {
		probeElems[i] = rng.Uint32()
	}
	const probeBits = 1 << 16
	probeWords := make([]uint64, probeBits/64)
	for i := range probeWords {
		probeWords[i] = rng.Uint64()
	}
	probeHasher := hashutil.New(0)
	var probeOutE, probeOutP [probeN]uint32

	// End-to-end merge pair at the default config.
	ab, bb := datasets.GenPairSelectivity(rng, n, n, 0.1, uint32(16*n))
	sa := core.MustNewSet(ab, core.DefaultConfig())
	sb := core.MustNewSet(bb, core.DefaultConfig())
	ex := core.NewExecutor()

	// End-to-end skewed pair at Scale 1 (big segments, hash strategy): the
	// shape served by the gathered probe and the 16-lane kernels.
	hb, hs := datasets.GenPairSelectivity(rng, n, n/20, 0.2, uint32(16*n))
	ha := core.MustNewSet(hb, core.Config{Scale: 1})
	hc := core.MustNewSet(hs, core.Config{Scale: 1})
	e2eDst := make([]uint32, n/20+1)

	var sink int
	cases := []benchCase{
		{"filter-seg8", func() int { sink = simd.AndSegMasks(masks, aw, bw, 8); return sink }},
		{"filter-seg16", func() int { sink = simd.AndSegMasks(masks, aw, bw, 16); return sink }},
		{"filter-seg32", func() int { sink = simd.AndSegMasks(masks, aw, bw, 32); return sink }},
		{"count-small", func() int { return simd.CountSmall(smallA, smallB) }},
		{"intersect-small16", func() int { return simd.IntersectSmall(seg16dst[:], seg16a, seg16b) }},
		{"probe-stage", func() int {
			if simd.GatherProbeActive() {
				nOut, _ := simd.ProbeStage(probeElems, probeWords, probeHasher.Seed(), probeBits-1, probeOutE[:], probeOutP[:])
				return nOut
			}
			return probeStageGo(probeElems, probeWords, probeHasher, probeBits-1, probeOutE[:], probeOutP[:])
		}},
		{"contains-long", func() int {
			hits := 0
			for x := uint32(0); x < 64; x++ {
				if simd.Contains(longList, x) {
					hits++
				}
			}
			return hits
		}},
		{"merge-count", func() int { return ex.CountMerge(sa, sb) }},
		{"intersect-hash-e2e", func() int { return ex.Intersect(e2eDst, ha, hc) }},
	}

	// The ladder, top rung first: each tier forces dispatch to exactly that
	// rung (avx2 on AVX-512 hardware is the forced-AVX2 tier, the same state
	// the FESIA_DISABLE_AVX512 env hatch pins at startup).
	tiers := []struct {
		suffix      string
		asm, avx512 bool
	}{{"avx512", true, true}, {"avx2", true, false}, {"go", false, false}}

	results := make([]benchResult, 0, 3*len(cases))
	speed := make(map[string]map[string]float64, len(cases)) // name -> tier -> ns/op
	for _, c := range cases {
		speed[c.name] = make(map[string]float64, len(tiers))
		for _, tier := range tiers {
			if tier.asm && !simd.HasAsm() {
				continue
			}
			if tier.avx512 && !simd.HasAVX512() {
				continue
			}
			prevAsm := simd.SetAsmEnabled(tier.asm)
			prevAvx512 := simd.SetAvx512Enabled(tier.avx512)
			prevK := kernels.UseAsmKernels(tier.asm)
			count := c.run() // warm up outside the measurement
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					c.run()
				}
			})
			kernels.UseAsmKernels(prevK)
			simd.SetAvx512Enabled(prevAvx512)
			simd.SetAsmEnabled(prevAsm)
			name := c.name + "/" + tier.suffix
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			speed[c.name][tier.suffix] = ns
			results = append(results, benchResult{
				Strategy:    name,
				NsPerOp:     ns,
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Count:       count,
			})
			fmt.Printf("  %-26s %12.1f ns/op %6d allocs/op\n", name, ns, r.AllocsPerOp())
		}
		if g, ok := speed[c.name]["go"]; ok {
			if a, ok := speed[c.name]["avx2"]; ok {
				fmt.Printf("  %-26s %12.2fx\n", c.name+" avx2 speedup", g/a)
			}
			if z, ok := speed[c.name]["avx512"]; ok {
				fmt.Printf("  %-26s %12.2fx\n", c.name+" avx512 speedup", g/z)
			}
		}
	}

	if simd.HasAsm() {
		for _, name := range []string{"filter-seg8", "filter-seg16", "filter-seg32"} {
			if ratio := speed[name]["go"] / speed[name]["avx2"]; ratio < simdFilterMinSpeedup {
				return results, fmt.Errorf("%s: asm speedup %.2fx below the %.1fx floor", name, ratio, simdFilterMinSpeedup)
			}
		}
		if ratio := speed["merge-count"]["avx2"] / speed["merge-count"]["go"]; ratio > simdEndToEndMaxRatio {
			return results, fmt.Errorf("merge-count: asm/go ratio %.3f exceeds %.2f — no end-to-end win", ratio, simdEndToEndMaxRatio)
		}
		fmt.Printf("\nstructural gates passed: filter >= %.1fx, end-to-end merge ratio <= %.2f\n",
			simdFilterMinSpeedup, simdEndToEndMaxRatio)
	} else {
		fmt.Println("\nassembly backend unavailable: wrote go-only rows, gates skipped")
	}
	if simd.HasAVX512() {
		if ratio := speed["intersect-small16"]["avx2"] / speed["intersect-small16"]["avx512"]; ratio < simdMaterializeMinSpeedup {
			return results, fmt.Errorf("intersect-small16: avx512 materialize %.2fx over avx2 tier, below the %.2fx floor", ratio, simdMaterializeMinSpeedup)
		}
		if ratio := speed["probe-stage"]["go"] / speed["probe-stage"]["avx512"]; ratio < simdProbeMinSpeedup {
			return results, fmt.Errorf("probe-stage: gathered probe %.2fx over scalar loop, below the %.2fx floor", ratio, simdProbeMinSpeedup)
		}
		fmt.Printf("avx512 gates passed: materialize >= %.2fx over avx2, gathered probe >= %.2fx over scalar (backend %s)\n",
			simdMaterializeMinSpeedup, simdProbeMinSpeedup, simd.Backend())
	} else {
		fmt.Println("avx512 tier unavailable on this machine: avx512 gates skipped (not failed)")
	}
	return results, writeResults(path, results)
}
