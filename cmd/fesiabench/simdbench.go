// SIMD backend benchmark mode (-simdjson): measures every dispatched assembly
// routine against its pure-Go reference on the same inputs and writes paired
// rows to BENCH_simd.json. Each routine appears twice — "<name>/asm" and
// "<name>/go" — toggled via simd.SetAsmEnabled / kernels.UseAsmKernels, so
// the file documents exactly what the assembly backend buys on the build
// machine. The mode also enforces two structural gates at generation time:
// the fused bitmap-filter kernel must beat the pure-Go loop by
// simdFilterMinSpeedup, and the end-to-end merge count must not be slower
// with the backend on. On machines without the backend the mode degrades to
// writing go-only rows (gates skipped).
package main

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// simdFilterMinSpeedup is the acceptance floor for the fused bitmap-filter
// microbenchmark: asm must be at least this many times faster than pure Go.
const simdFilterMinSpeedup = 1.5

// simdEndToEndMaxRatio caps the asm/go ns ratio of the end-to-end merge
// count: the backend must deliver a measurable win, so asm may take at most
// this fraction of the pure-Go time (a little above 1.0 would only allow
// parity; 0.97 demands a real improvement while absorbing timer noise).
const simdEndToEndMaxRatio = 0.97

func runSimdBench(path string, quick bool) ([]benchResult, error) {
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(3))

	// Microbenchmark inputs: one 64 KiB bitmap pair per side for the fused
	// filter, mixed-density words so the mask stream has structure.
	const nblocks = 256
	aw := make([]uint64, nblocks*simd.BlockWords)
	bw := make([]uint64, nblocks*simd.BlockWords)
	for i := range aw {
		aw[i] = rng.Uint64() & rng.Uint64()
		bw[i] = rng.Uint64() & rng.Uint64()
	}
	masks := make([]uint32, nblocks)

	smallA := []uint32{3, 9, 17, 22, 31, 40, 51, 63}
	smallB := []uint32{1, 9, 18, 22, 35, 40}
	longList := make([]uint32, 48)
	for i := range longList {
		longList[i] = uint32(i * 3)
	}

	// End-to-end merge pair at the default config.
	ab, bb := datasets.GenPairSelectivity(rng, n, n, 0.1, uint32(16*n))
	sa := core.MustNewSet(ab, core.DefaultConfig())
	sb := core.MustNewSet(bb, core.DefaultConfig())
	ex := core.NewExecutor()

	var sink int
	cases := []benchCase{
		{"filter-seg8", func() int { sink = simd.AndSegMasks(masks, aw, bw, 8); return sink }},
		{"filter-seg16", func() int { sink = simd.AndSegMasks(masks, aw, bw, 16); return sink }},
		{"filter-seg32", func() int { sink = simd.AndSegMasks(masks, aw, bw, 32); return sink }},
		{"count-small", func() int { return simd.CountSmall(smallA, smallB) }},
		{"contains-long", func() int {
			hits := 0
			for x := uint32(0); x < 64; x++ {
				if simd.Contains(longList, x) {
					hits++
				}
			}
			return hits
		}},
		{"merge-count", func() int { return ex.CountMerge(sa, sb) }},
	}

	backends := []struct {
		suffix string
		on     bool
	}{{"asm", true}, {"go", false}}

	results := make([]benchResult, 0, 2*len(cases))
	speed := make(map[string]map[string]float64, len(cases)) // name -> backend -> ns/op
	for _, c := range cases {
		speed[c.name] = make(map[string]float64, 2)
		for _, be := range backends {
			if be.on && !simd.HasAsm() {
				continue
			}
			prevAsm := simd.SetAsmEnabled(be.on)
			prevK := kernels.UseAsmKernels(be.on)
			count := c.run() // warm up outside the measurement
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					c.run()
				}
			})
			kernels.UseAsmKernels(prevK)
			simd.SetAsmEnabled(prevAsm)
			name := c.name + "/" + be.suffix
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			speed[c.name][be.suffix] = ns
			results = append(results, benchResult{
				Strategy:    name,
				NsPerOp:     ns,
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Count:       count,
			})
			fmt.Printf("  %-24s %12.1f ns/op %6d allocs/op\n", name, ns, r.AllocsPerOp())
		}
		if g, ok := speed[c.name]["go"]; ok {
			if a, ok := speed[c.name]["asm"]; ok {
				fmt.Printf("  %-24s %12.2fx\n", c.name+" asm speedup", g/a)
			}
		}
	}

	if simd.HasAsm() {
		for _, name := range []string{"filter-seg8", "filter-seg16", "filter-seg32"} {
			if ratio := speed[name]["go"] / speed[name]["asm"]; ratio < simdFilterMinSpeedup {
				return results, fmt.Errorf("%s: asm speedup %.2fx below the %.1fx floor", name, ratio, simdFilterMinSpeedup)
			}
		}
		if ratio := speed["merge-count"]["asm"] / speed["merge-count"]["go"]; ratio > simdEndToEndMaxRatio {
			return results, fmt.Errorf("merge-count: asm/go ratio %.3f exceeds %.2f — no end-to-end win", ratio, simdEndToEndMaxRatio)
		}
		fmt.Printf("\nstructural gates passed: filter >= %.1fx, end-to-end merge ratio <= %.2f (backend %s)\n",
			simdFilterMinSpeedup, simdEndToEndMaxRatio, simd.Backend())
	} else {
		fmt.Println("\nassembly backend unavailable: wrote go-only rows, gates skipped")
	}
	return results, writeResults(path, results)
}
