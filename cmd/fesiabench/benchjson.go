// JSON micro-benchmark mode (-json): measures the query-time fast paths with
// testing.Benchmark and writes machine-readable results — ns/op, allocs/op,
// bytes/op per strategy — to BENCH_intersect.json. Each strategy is measured
// twice: through the one-shot package-level wrappers and through a reused
// Executor, so the report shows exactly what the allocation-free engine buys.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/simd"
)

// benchResult is one row of BENCH_intersect.json.
type benchResult struct {
	Strategy    string  `json:"strategy"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Count       int     `json:"count"` // intersection size, sanity anchor
}

// benchCase pairs a strategy name with the operation to measure. run returns
// the intersection count so results can be cross-checked across strategies.
type benchCase struct {
	name string
	run  func() int
}

func runJSONBench(path string, quick bool) error {
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(1))
	a, b := datasets.GenPairSelectivity(rng, n, n, 0.1, uint32(16*n))
	// Skewed pair (1:8) for the hash strategy's natural regime.
	sk1, sk2 := datasets.GenPairSelectivity(rng, n/8, n, 0.1, uint32(16*n))

	cfg := core.Config{Width: simd.WidthAVX}
	sa := core.MustNewSet(a, cfg)
	sb := core.MustNewSet(b, cfg)
	sc := core.MustNewSet(sk1, cfg)
	sd := core.MustNewSet(sk2, cfg)
	se := core.MustNewSet(a[:len(a)/2], cfg)

	ex := core.NewExecutor()
	dst := make([]uint32, n)
	workers := min(runtime.GOMAXPROCS(0), 4)

	cases := []benchCase{
		{"merge/oneshot", func() int { return core.CountMerge(sa, sb) }},
		{"merge/executor", func() int { return ex.CountMerge(sa, sb) }},
		{"hash/oneshot", func() int { return core.CountHash(sc, sd) }},
		{"hash/executor", func() int { return ex.CountHash(sc, sd) }},
		{"adaptive/oneshot", func() int { return core.Count(sa, sb) }},
		{"adaptive/executor", func() int { return ex.Count(sa, sb) }},
		{"intersect/oneshot", func() int { return core.Intersect(dst, sa, sb) }},
		{"intersect/executor", func() int { return ex.Intersect(dst, sa, sb) }},
		{"kway3/oneshot", func() int { return core.CountK(sa, sb, se) }},
		{"kway3/executor", func() int { return ex.CountK(sa, sb, se) }},
		{"merge-parallel/oneshot", func() int { return core.CountMergeParallel(sa, sb, workers) }},
		{"merge-parallel/executor", func() int { return ex.CountMergeParallel(sa, sb, workers) }},
		{"kway3-parallel/oneshot", func() int { return core.CountKParallel(workers, sa, sb, se) }},
		{"kway3-parallel/executor", func() int { return ex.CountKParallel(workers, sa, sb, se) }},
	}

	results := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		count := c.run() // warm up scratch outside the measurement
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				c.run()
			}
		})
		results = append(results, benchResult{
			Strategy:    c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Count:       count,
		})
		fmt.Printf("  %-24s %12.1f ns/op %6d allocs/op %8d B/op\n",
			c.name, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}
