// JSON micro-benchmark mode (-json): measures the query-time fast paths with
// testing.Benchmark and writes machine-readable results — ns/op, allocs/op,
// bytes/op per strategy — to BENCH_intersect.json. Each strategy is measured
// twice: through the one-shot package-level wrappers and through a reused
// Executor, so the report shows exactly what the allocation-free engine buys.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/simd"
)

// benchResult is one row of BENCH_intersect.json.
type benchResult struct {
	Strategy    string  `json:"strategy"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Count       int     `json:"count"` // intersection size, sanity anchor
}

// benchCase pairs a strategy name with the operation to measure. run returns
// the intersection count so results can be cross-checked across strategies.
type benchCase struct {
	name string
	run  func() int
}

func runJSONBench(path string, quick bool) ([]benchResult, error) {
	n := 200_000
	if quick {
		n = 20_000
	}
	rng := rand.New(rand.NewSource(1))
	a, b := datasets.GenPairSelectivity(rng, n, n, 0.1, uint32(16*n))
	// Skewed pair (1:8) for the hash strategy's natural regime.
	sk1, sk2 := datasets.GenPairSelectivity(rng, n/8, n, 0.1, uint32(16*n))

	cfg := core.Config{Width: simd.WidthAVX}
	sa := core.MustNewSet(a, cfg)
	sb := core.MustNewSet(b, cfg)
	sc := core.MustNewSet(sk1, cfg)
	sd := core.MustNewSet(sk2, cfg)
	se := core.MustNewSet(a[:len(a)/2], cfg)

	ex := core.NewExecutor()
	dst := make([]uint32, n)
	workers := min(runtime.GOMAXPROCS(0), 4)

	cases := []benchCase{
		{"merge/oneshot", func() int { return core.CountMerge(sa, sb) }},
		{"merge/executor", func() int { return ex.CountMerge(sa, sb) }},
		{"hash/oneshot", func() int { return core.CountHash(sc, sd) }},
		{"hash/executor", func() int { return ex.CountHash(sc, sd) }},
		{"adaptive/oneshot", func() int { return core.Count(sa, sb) }},
		{"adaptive/executor", func() int { return ex.Count(sa, sb) }},
		{"intersect/oneshot", func() int { return core.Intersect(dst, sa, sb) }},
		{"intersect/executor", func() int { return ex.Intersect(dst, sa, sb) }},
		{"kway3/oneshot", func() int { return core.CountK(sa, sb, se) }},
		{"kway3/executor", func() int { return ex.CountK(sa, sb, se) }},
		{"merge-parallel/oneshot", func() int { return core.CountMergeParallel(sa, sb, workers) }},
		{"merge-parallel/executor", func() int { return ex.CountMergeParallel(sa, sb, workers) }},
		{"kway3-parallel/oneshot", func() int { return core.CountKParallel(workers, sa, sb, se) }},
		{"kway3-parallel/executor", func() int { return ex.CountKParallel(workers, sa, sb, se) }},
	}

	results := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		count := c.run() // warm up scratch outside the measurement
		r := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				c.run()
			}
		})
		results = append(results, benchResult{
			Strategy:    c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Count:       count,
		})
		fmt.Printf("  %-24s %12.1f ns/op %6d allocs/op %8d B/op\n",
			c.name, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	return results, writeResults(path, results)
}

// writeResults marshals benchmark rows to a JSON artifact.
func writeResults(path string, results []benchResult) error {
	return writeResultsAny(path, results)
}

// writeResultsAny marshals any report shape to a JSON artifact.
func writeResultsAny(path string, results any) error {
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// regressionTolerance is how much slower (ns/op) a strategy may measure
// against the committed baseline before checkBaseline fails. Shared-machine
// benchmarks are noisy; the gate is meant to catch structural regressions,
// not scheduling jitter.
const regressionTolerance = 0.15

// checkBaseline compares measured rows against a committed baseline file and
// returns an error listing every strategy whose ns/op regressed by more than
// regressionTolerance. Strategies absent from the baseline (new benchmarks)
// are reported informationally and do not fail the check.
func checkBaseline(results []benchResult, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []benchResult
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	byName := make(map[string]benchResult, len(base))
	for _, b := range base {
		byName[b.Strategy] = b
	}
	var failures []string
	for _, r := range results {
		b, ok := byName[r.Strategy]
		if !ok {
			fmt.Printf("  %-28s (not in baseline, skipped)\n", r.Strategy)
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > 1+regressionTolerance {
			status = "REGRESSION"
			failures = append(failures,
				fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.0f%% slower)",
					r.Strategy, r.NsPerOp, b.NsPerOp, (ratio-1)*100))
		}
		fmt.Printf("  %-28s %6.2fx baseline  %s\n", r.Strategy, ratio, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%d%%:\n  %s",
			len(failures), int(regressionTolerance*100), strings.Join(failures, "\n  "))
	}
	return nil
}
