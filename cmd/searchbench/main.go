// Command searchbench runs the database query task of Fig. 12: conjunctive
// multi-keyword queries against an inverted index over a WebDocs-like
// corpus, comparing FESIA with the baseline intersection methods.
//
// With -fimi it loads a real FIMI-format transaction file (e.g. the WebDocs
// dataset the paper uses, from http://fimi.cs.helsinki.fi/data/) instead of
// generating a corpus.
//
// Usage:
//
//	searchbench [-docs N] [-items M] [-queries Q] [-k KEYWORDS] [-seed S]
//	            [-fimi FILE [-maxdocs N]]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"slices"
	"time"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/invindex"
	"fesia/internal/simd"
)

// sampleAdaptive draws queries under the paper's constraints (posting
// length >= 64, selectivity < 0.2), relaxing them stepwise when a loaded
// dataset is too small or too uniform to satisfy them.
func sampleAdaptive(corpus *datasets.Corpus, rng *rand.Rand, nq, k int) []datasets.Query {
	for _, c := range []struct {
		minLen int
		maxSel float64
	}{{64, 0.2}, {32, 0.2}, {8, 0.5}, {2, 1.0}} {
		qs, err := corpus.TrySampleQueries(rng, nq, k, c.minLen, c.maxSel, 0)
		if err == nil {
			if c.minLen != 64 || c.maxSel != 0.2 {
				fmt.Printf("note: relaxed query constraints to minLen=%d selectivity<%.1f\n",
					c.minLen, c.maxSel)
			}
			return qs
		}
	}
	log.Fatalf("corpus cannot produce %d queries with %d keywords", nq, k)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("searchbench: ")
	docs := flag.Int("docs", 100_000, "documents in the generated corpus")
	items := flag.Int("items", 200_000, "distinct items in the generated corpus")
	nq := flag.Int("queries", 50, "queries per scenario")
	k := flag.Int("k", 2, "keywords per query")
	seed := flag.Int64("seed", 1, "corpus seed")
	fimi := flag.String("fimi", "", "load a FIMI transaction file instead of generating")
	maxDocs := flag.Int("maxdocs", 0, "with -fimi: truncate to N transactions (0 = all)")
	flag.Parse()

	var corpus *datasets.Corpus
	if *fimi != "" {
		fmt.Printf("loading FIMI corpus from %s...\n", *fimi)
		f, err := os.Open(*fimi)
		if err != nil {
			log.Fatal(err)
		}
		corpus, err = datasets.ReadFIMI(f, *maxDocs)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("generating corpus (%d docs, %d items)...\n", *docs, *items)
		corpus = datasets.NewCorpus(datasets.CorpusConfig{
			NumDocs: *docs, NumItems: *items, MeanLen: 40, Seed: *seed,
		})
	}
	start := time.Now()
	ix, err := invindex.FromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d posting lists, built in %.2fs\n\n",
		ix.NumItems(), time.Since(start).Seconds())

	rng := rand.New(rand.NewSource(*seed))
	queries := sampleAdaptive(corpus, rng, *nq, *k)

	type method struct {
		name string
		run  func() int
	}
	itemSets := make([][]uint32, len(queries))
	lists := make([][][]uint32, len(queries))
	for i, q := range queries {
		itemSets[i] = q.Items
		lists[i] = q.Postings
	}
	methods := []method{
		{"Scalar", func() int {
			n := 0
			for _, l := range lists {
				n += baselines.CountScalarK(l)
			}
			return n
		}},
		{"Shuffling", func() int {
			n := 0
			for _, l := range lists {
				n += baselines.CountShufflingK(simd.WidthAVX, l)
			}
			return n
		}},
		{"BMiss", func() int {
			n := 0
			for _, l := range lists {
				n += baselines.CountBMissK(l)
			}
			return n
		}},
		{"Galloping", func() int {
			n := 0
			for _, l := range lists {
				n += baselines.CountScalarGallopingK(l)
			}
			return n
		}},
		{"Hash", func() int {
			n := 0
			for _, l := range lists {
				n += baselines.CountHashK(l)
			}
			return n
		}},
		{"FESIA", func() int {
			// One executor for the whole query loop: scratch buffers warm up
			// on the first query and are reused for the rest.
			ex := core.NewExecutor()
			n := 0
			for _, it := range itemSets {
				n += ix.QueryCountExec(ex, it...)
			}
			return n
		}},
	}

	fmt.Printf("%d queries x %d keywords:\n", len(queries), *k)
	var want int
	var scalarTime time.Duration
	for i, m := range methods {
		// Best of 5 timed rounds.
		best := time.Duration(1 << 62)
		total := 0
		for round := 0; round < 5; round++ {
			t0 := time.Now()
			total = m.run()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		if i == 0 {
			want = total
			scalarTime = best
		} else if total != want {
			log.Fatalf("%s disagrees: %d matches vs scalar %d", m.name, total, want)
		}
		fmt.Printf("  %-10s %8.2fms total (%6.2fus/query)  speedup %.2fx  [%d total matches]\n",
			m.name, float64(best.Microseconds())/1000,
			float64(best.Microseconds())/float64(len(queries)),
			float64(scalarTime)/float64(best), total)
	}

	oneVsMany(ix, corpus, rng)
}

// oneVsMany runs the batch one-vs-many scenario of Section VII-F: one base
// keyword intersected against every other sampled keyword, comparing a
// pairwise query loop with the batch engine (Index.QueryManyCountExec).
func oneVsMany(ix *invindex.Index, corpus *datasets.Corpus, rng *rand.Rand) {
	// Base = the most frequent item; candidates = a sample of the rest.
	var base uint32
	baseLen := -1
	items := make([]uint32, 0, len(corpus.Postings))
	for item, lst := range corpus.Postings {
		items = append(items, item)
		if len(lst) > baseLen {
			base, baseLen = item, len(lst)
		}
	}
	if len(items) < 2 {
		return
	}
	slices.Sort(items) // map order is random; keep runs reproducible
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	others := make([]uint32, 0, min(len(items)-1, 4096))
	for _, it := range items {
		if it != base && len(others) < cap(others) {
			others = append(others, it)
		}
	}

	ex := core.NewExecutor()
	pairwise := make([]int, len(others))
	batch := make([]int, len(others))
	bestPair, bestBatch := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		t0 := time.Now()
		for i, o := range others {
			pairwise[i] = ix.QueryCountExec(ex, base, o)
		}
		if d := time.Since(t0); d < bestPair {
			bestPair = d
		}
		t0 = time.Now()
		ix.QueryManyCountExec(ex, batch, base, others)
		if d := time.Since(t0); d < bestBatch {
			bestBatch = d
		}
	}
	for i := range others {
		if pairwise[i] != batch[i] {
			log.Fatalf("one-vs-many disagrees at item %d: batch %d, pairwise %d",
				others[i], batch[i], pairwise[i])
		}
	}
	fmt.Printf("\none keyword (|posting|=%d) vs %d others:\n", baseLen, len(others))
	fmt.Printf("  %-10s %8.2fms\n", "pairwise", float64(bestPair.Microseconds())/1000)
	fmt.Printf("  %-10s %8.2fms  speedup %.2fx\n", "batch",
		float64(bestBatch.Microseconds())/1000, float64(bestPair)/float64(bestBatch))
}
