// Command trianglecount counts triangles in a graph using set intersection
// (the graph-analytics task of the paper's Fig. 13).
//
// Without -edges it generates a power-law graph; with -edges it reads a
// whitespace-separated "u v" edge list (one undirected edge per line, `#`
// comments ignored — the SNAP text format).
//
// Usage:
//
//	trianglecount [-nodes N] [-edgesper M] [-clustering P] [-edges FILE]
//	              [-method fesia|scalar|shuffling] [-workers K]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/graph"
	"fesia/internal/simd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trianglecount: ")
	nodes := flag.Int("nodes", 100_000, "vertices in the generated graph")
	edgesPer := flag.Int("edgesper", 8, "attachment edges per vertex")
	clustering := flag.Float64("clustering", 0.5, "triadic closure probability")
	seed := flag.Int64("seed", 1, "generator seed")
	edgesFile := flag.String("edges", "", "read an edge list file instead of generating")
	method := flag.String("method", "fesia", "fesia | scalar | shuffling")
	workers := flag.Int("workers", runtime.NumCPU(), "worker-pool parts (persistent pool, no per-call goroutines)")
	flag.Parse()

	var nVerts int
	var edges [][2]uint32
	if *edgesFile != "" {
		var err error
		nVerts, edges, err = readEdges(*edgesFile)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g := datasets.NewGraph(datasets.GraphConfig{
			Nodes: *nodes, EdgesPer: *edgesPer, Clustering: *clustering, Seed: *seed,
		})
		nVerts, edges = g.Nodes, g.Edges
	}
	fmt.Printf("graph: %d vertices, %d edges\n", nVerts, len(edges))

	start := time.Now()
	oriented := graph.FromEdges(nVerts, edges).Oriented()
	fmt.Printf("CSR + degree orientation: %.2fs\n", time.Since(start).Seconds())

	var triangles int64
	start = time.Now()
	switch *method {
	case "fesia":
		buildStart := time.Now()
		fg, err := graph.BuildFesia(oriented, core.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("FESIA construction: %.2fs\n", time.Since(buildStart).Seconds())
		start = time.Now()
		triangles = fg.CountTriangles(*workers)
	case "scalar":
		triangles = graph.CountTrianglesParallel(oriented, baselines.CountScalar, *workers)
	case "shuffling":
		triangles = graph.CountTrianglesParallel(oriented, func(a, b []uint32) int {
			return baselines.CountShuffling(simd.WidthAVX, a, b)
		}, *workers)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	elapsed := time.Since(start)
	fmt.Printf("%s (%d workers): %d triangles in %.3fs (%.1fM intersections/s)\n",
		*method, *workers, triangles, elapsed.Seconds(),
		float64(oriented.NumDirectedEdges())/elapsed.Seconds()/1e6)
}

func readEdges(path string) (int, [][2]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	var edges [][2]uint32
	maxID := uint32(0)
	seen := map[[2]uint32]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, nil, fmt.Errorf("bad edge line: %q", line)
		}
		u64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return 0, nil, err
		}
		v64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return 0, nil, err
		}
		u, v := uint32(u64), uint32(v64)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]uint32{u, v}] {
			continue
		}
		seen[[2]uint32{u, v}] = true
		edges = append(edges, [2]uint32{u, v})
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return int(maxID) + 1, edges, nil
}
