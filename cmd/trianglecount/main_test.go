package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReadEdges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	content := `# SNAP-style comment
0 1
1 2
2 0
2 0
3 3
1	2
5 4
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	nodes, edges, err := readEdges(path)
	if err != nil {
		t.Fatal(err)
	}
	// Dedup (2 0 twice, 1 2 in both orders), self-loop dropped (3 3),
	// canonical orientation (5 4 -> 4 5).
	if len(edges) != 4 {
		t.Fatalf("edges = %v, want 4", edges)
	}
	if nodes != 6 {
		t.Fatalf("nodes = %d, want 6 (max id 5 + 1)", nodes)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not canonical", e)
		}
	}
}

func TestReadEdgesErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readEdges(bad); err == nil {
		t.Error("single-field line should fail")
	}
	if err := os.WriteFile(bad, []byte("a b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readEdges(bad); err == nil {
		t.Error("non-numeric should fail")
	}
	if _, _, err := readEdges(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should fail")
	}
}
