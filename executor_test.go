package fesia

import (
	"math/rand"
	"slices"
	"testing"
)

func execRandElems(rng *rand.Rand, n int, universe uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32() % universe
	}
	return out
}

// TestExecutorMatchesWrappers pins every Executor method to the package-level
// compatibility wrapper it backs.
func TestExecutorMatchesWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	e := NewExecutor()
	for trial := 0; trial < 20; trial++ {
		a := MustBuild(execRandElems(rng, 1+rng.Intn(3000), 1<<15))
		b := MustBuild(execRandElems(rng, 1+rng.Intn(3000), 1<<15))
		c := MustBuild(execRandElems(rng, 1+rng.Intn(500), 1<<15))

		if got, want := e.IntersectCount(a, b), IntersectCount(a, b); got != want {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, want)
		}
		if got, want := e.MergeCount(a, b), MergeCount(a, b); got != want {
			t.Fatalf("trial %d: MergeCount = %d, want %d", trial, got, want)
		}
		if got, want := e.HashCount(a, b), HashCount(a, b); got != want {
			t.Fatalf("trial %d: HashCount = %d, want %d", trial, got, want)
		}
		if got, want := e.Intersect(a, b), Intersect(a, b); !slices.Equal(got, want) {
			t.Fatalf("trial %d: Intersect = %v, want %v", trial, got, want)
		}
		if got, want := e.IntersectCountK(a, b, c), IntersectCountK(a, b, c); got != want {
			t.Fatalf("trial %d: IntersectCountK = %d, want %d", trial, got, want)
		}
		if got, want := e.IntersectK(a, b, c), IntersectK(a, b, c); !slices.Equal(got, want) {
			t.Fatalf("trial %d: IntersectK = %v, want %v", trial, got, want)
		}
		for _, workers := range []int{1, 2, 8} {
			if got, want := e.IntersectCountParallel(a, b, workers), e.IntersectCount(a, b); got != want {
				t.Fatalf("trial %d workers %d: IntersectCountParallel = %d, want %d", trial, workers, got, want)
			}
			if got, want := e.IntersectCountKParallel(workers, a, b, c), e.IntersectCountK(a, b, c); got != want {
				t.Fatalf("trial %d workers %d: IntersectCountKParallel = %d, want %d", trial, workers, got, want)
			}
		}
	}
}

// TestIntersectIntoOrderingContract checks the documented contract of the
// unsorted fast path: same multiset of values as Intersect, segment order
// preserved between repeat calls, and sorting recovers the ascending result.
func TestIntersectIntoOrderingContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	e := NewExecutor()
	a := MustBuild(execRandElems(rng, 4000, 1<<15))
	b := MustBuild(execRandElems(rng, 3000, 1<<15))

	want := Intersect(a, b) // ascending
	dst := make([]uint32, min(a.Len(), b.Len()))
	n := e.IntersectInto(dst, a, b)
	if n != len(want) {
		t.Fatalf("IntersectInto count = %d, want %d", n, len(want))
	}
	got := slices.Clone(dst[:n])
	slices.Sort(got)
	if !slices.Equal(got, want) {
		t.Fatalf("IntersectInto values differ from Intersect after sorting")
	}

	// Deterministic: repeat calls produce the identical order.
	again := make([]uint32, len(dst))
	m := e.IntersectInto(again, a, b)
	if !slices.Equal(again[:m], dst[:n]) {
		t.Fatal("IntersectInto order is not deterministic across calls")
	}

	// Top-level wrapper agrees.
	viaWrapper := make([]uint32, len(dst))
	k := IntersectInto(viaWrapper, a, b)
	if !slices.Equal(viaWrapper[:k], dst[:n]) {
		t.Fatal("package-level IntersectInto disagrees with Executor.IntersectInto")
	}
}

// TestIntersectAppend checks the amortized append path.
func TestIntersectAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	e := NewExecutor()
	a := MustBuild(execRandElems(rng, 2000, 1<<14))
	b := MustBuild(execRandElems(rng, 2000, 1<<14))
	want := Intersect(a, b)

	var buf []uint32
	for round := 0; round < 3; round++ {
		buf = e.IntersectAppend(buf[:0], a, b)
		got := slices.Clone(buf)
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("round %d: IntersectAppend values differ", round)
		}
	}
	// Appending onto existing content preserves the prefix.
	prefix := []uint32{1, 2, 3}
	out := e.IntersectAppend(slices.Clone(prefix), a, b)
	if !slices.Equal(out[:3], prefix) {
		t.Fatal("IntersectAppend clobbered the existing prefix")
	}
	if len(out) != 3+len(want) {
		t.Fatalf("IntersectAppend appended %d values, want %d", len(out)-3, len(want))
	}
}

// TestPublicVisit checks the streaming methods against the slice paths.
func TestPublicVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e := NewExecutor()
	a := MustBuild(execRandElems(rng, 2000, 1<<14))
	b := MustBuild(execRandElems(rng, 1500, 1<<14))
	c := MustBuild(execRandElems(rng, 400, 1<<14))

	dst := make([]uint32, 2000)
	n := e.IntersectInto(dst, a, b)
	var got []uint32
	e.Visit(a, b, func(v uint32) { got = append(got, v) })
	if !slices.Equal(got, dst[:n]) {
		t.Fatal("Visit emission differs from IntersectInto")
	}

	n = e.IntersectKInto(dst, a, b, c)
	got = got[:0]
	e.VisitK(func(v uint32) { got = append(got, v) }, a, b, c)
	if !slices.Equal(got, dst[:n]) {
		t.Fatal("VisitK emission differs from IntersectKInto")
	}
}

// TestPublicExecutorAllocs asserts the acceptance criterion at the public
// layer: a warm Executor's counting and Into paths do not allocate.
func TestPublicExecutorAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	e := NewExecutor()
	a := MustBuild(execRandElems(rng, 3000, 1<<15))
	b := MustBuild(execRandElems(rng, 2500, 1<<15))
	c := MustBuild(execRandElems(rng, 400, 1<<15))
	dst := make([]uint32, 3000)
	ks := []*Set{a, b, c}

	e.IntersectCount(a, b)
	e.IntersectInto(dst, a, b)
	e.IntersectCountK(ks...)
	e.IntersectKInto(dst, ks...)

	cases := []struct {
		name string
		fn   func()
	}{
		{"IntersectCount", func() { e.IntersectCount(a, b) }},
		{"IntersectInto", func() { e.IntersectInto(dst, a, b) }},
		{"IntersectCountK", func() { e.IntersectCountK(ks...) }},
		{"IntersectKInto", func() { e.IntersectKInto(dst, ks...) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(20, c.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op on a warm Executor, want 0", c.name, avg)
		}
	}
}

// TestPublicManyParity pins the one-vs-many batch methods to pairwise loops
// over the corresponding two-way methods.
func TestPublicManyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	q := MustBuild(execRandElems(rng, 3000, 1<<15))
	lists := make([][]uint32, 24)
	for i := range lists {
		lists[i] = execRandElems(rng, 1+rng.Intn(6000), 1<<15)
	}
	cands, err := BuildBatch(lists)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor()

	out := make([]int, len(cands))
	e.IntersectCountMany(q, cands, out)
	bound := 0
	for i, c := range cands {
		if want := e.IntersectCount(q, c); out[i] != want {
			t.Fatalf("candidate %d: IntersectCountMany %d, want %d", i, out[i], want)
		}
		bound += min(q.Len(), c.Len())
	}

	outP := make([]int, len(cands))
	e.IntersectCountManyParallel(q, cands, outP, 3)
	if !slices.Equal(out, outP) {
		t.Fatalf("parallel counts %v, sequential %v", outP, out)
	}

	dst := make([]uint32, bound)
	counts := make([]int, len(cands))
	total := e.IntersectManyInto(dst, counts, q, cands)
	if !slices.Equal(counts, out) {
		t.Fatalf("IntersectManyInto counts %v, want %v", counts, out)
	}

	visited := make([]int, len(cands))
	sum := 0
	e.VisitMany(q, cands, func(cand int, v uint32) {
		visited[cand]++
		sum++
	})
	if !slices.Equal(visited, out) || sum != total {
		t.Fatalf("VisitMany counts %v (sum %d), want %v (total %d)", visited, sum, out, total)
	}
}
