package fesia

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuickstart(t *testing.T) {
	a := MustBuild([]uint32{1, 4, 15, 21, 32, 34})
	b := MustBuild([]uint32{2, 6, 12, 16, 21, 23})
	if got := Intersect(a, b); len(got) != 1 || got[0] != 21 {
		t.Errorf("Intersect = %v, want [21]", got)
	}
	if IntersectCount(a, b) != 1 || MergeCount(a, b) != 1 || HashCount(a, b) != 1 {
		t.Error("counts disagree")
	}
}

func TestBuildOptions(t *testing.T) {
	elems := []uint32{10, 20, 30}
	for _, opts := range [][]Option{
		{WithWidth(SSE)},
		{WithWidth(AVX512), WithKernelStride(4)},
		{WithSegmentBits(16), WithBitmapScale(8), WithSeed(99)},
	} {
		s, err := Build(elems, opts...)
		if err != nil {
			t.Fatalf("Build(%d opts): %v", len(opts), err)
		}
		if s.Len() != 3 || !s.Contains(20) || s.Contains(25) {
			t.Error("set misbehaves under options")
		}
	}
	if _, err := Build(elems, WithSegmentBits(5)); err == nil {
		t.Error("invalid option should error")
	}
	if _, err := Build(elems, WithWidth(SSE), WithKernelStride(4)); err == nil {
		t.Error("stride on SSE should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBuild should panic on bad options")
			}
		}()
		MustBuild(elems, WithSegmentBits(5))
	}()
}

func TestSetAccessors(t *testing.T) {
	s := MustBuild([]uint32{3, 1, 2, 3})
	if s.Len() != 3 {
		t.Error("dedup failed")
	}
	if got := s.Elements(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Elements = %v", got)
	}
	if s.BitmapBits() < 64 || s.MemoryBytes() <= 0 {
		t.Error("accessor sanity failed")
	}
	st := s.Stats()
	if st.N != 3 || st.NonEmptySegments == 0 || st.Segments == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestKWayAPI(t *testing.T) {
	a := MustBuild([]uint32{1, 2, 3, 4, 5})
	b := MustBuild([]uint32{2, 3, 4, 5, 6})
	c := MustBuild([]uint32{3, 4, 5, 6, 7})
	if got := IntersectCountK(a, b, c); got != 3 {
		t.Errorf("IntersectCountK = %d, want 3", got)
	}
	got := IntersectK(a, b, c)
	want := []uint32{3, 4, 5}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("IntersectK = %v, want %v", got, want)
	}
}

func TestParallelAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ea := make([]uint32, 5000)
	eb := make([]uint32, 5000)
	for i := range ea {
		ea[i] = rng.Uint32() % 60000
		eb[i] = rng.Uint32() % 60000
	}
	a := MustBuild(ea)
	b := MustBuild(eb)
	want := MergeCount(a, b)
	for _, workers := range []int{1, 2, 4, 16} {
		if got := IntersectCountParallel(a, b, workers); got != want {
			t.Errorf("parallel(%d) = %d, want %d", workers, got, want)
		}
	}
	c := MustBuild(ea[:3000])
	wantK := IntersectCountK(a, b, c)
	for _, workers := range []int{1, 3, 8} {
		if got := IntersectCountKParallel(workers, a, b, c); got != wantK {
			t.Errorf("k-parallel(%d) = %d, want %d", workers, got, wantK)
		}
	}
}

func TestSerializeAPI(t *testing.T) {
	a := MustBuild([]uint32{10, 20, 30, 40}, WithSeed(5))
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 || !got.Contains(30) {
		t.Error("deserialized set misbehaves")
	}
	b := MustBuild([]uint32{30, 40, 50}, WithSeed(5))
	if IntersectCount(got, b) != 2 {
		t.Error("deserialized set intersects wrongly")
	}
	if _, err := ReadSet(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should not deserialize")
	}
}

func TestBuildBatchAPI(t *testing.T) {
	lists := [][]uint32{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	sets, err := BuildBatch(lists)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("got %d sets", len(sets))
	}
	if got := IntersectCountK(sets...); got != 1 {
		t.Errorf("batch k-way count = %d, want 1", got)
	}
	if got := Intersect(sets[0], sets[1]); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("batch Intersect = %v", got)
	}
	// Batch sets interoperate with individually built ones.
	single := MustBuild([]uint32{3, 9})
	if IntersectCount(sets[0], single) != 1 {
		t.Error("batch/single interop failed")
	}
	if _, err := BuildBatch(lists, WithSegmentBits(5)); err == nil {
		t.Error("bad options should error")
	}
}

func TestBreakdownAPI(t *testing.T) {
	a := MustBuild([]uint32{1, 2, 3})
	b := MustBuild([]uint32{2, 3, 4})
	bd := IntersectCountBreakdown(a, b)
	if bd.Count != 2 {
		t.Errorf("Breakdown.Count = %d, want 2", bd.Count)
	}
}

// Property: the public API agrees with a map-based reference on arbitrary
// inputs (with duplicates and in any order).
func TestPublicAPIQuick(t *testing.T) {
	f := func(ea, eb []uint32) bool {
		if len(ea) > 3000 {
			ea = ea[:3000]
		}
		if len(eb) > 3000 {
			eb = eb[:3000]
		}
		want := map[uint32]bool{}
		inA := map[uint32]bool{}
		for _, v := range ea {
			inA[v] = true
		}
		for _, v := range eb {
			if inA[v] {
				want[v] = true
			}
		}
		a := MustBuild(ea)
		b := MustBuild(eb)
		if IntersectCount(a, b) != len(want) {
			return false
		}
		got := Intersect(a, b)
		if len(got) != len(want) || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for _, v := range got {
			if !want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
