// Benchmarks for the allocation-free query engine: each pair compares the
// one-shot package-level wrapper against a reused Executor on the same
// inputs, so `go test -bench=Executor -benchmem` shows what holding scratch
// state across queries buys (the executor rows should report 0 allocs/op).
package fesia

import (
	"math/rand"
	"runtime"
	"testing"

	"fesia/internal/stats"
)

func benchExecSets(b *testing.B) (sa, sb, sc *Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	sa = MustBuild(execRandElems(rng, 200_000, 1<<22))
	sb = MustBuild(execRandElems(rng, 200_000, 1<<22))
	sc = MustBuild(execRandElems(rng, 100_000, 1<<22))
	return sa, sb, sc
}

func BenchmarkExecutorCount(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCount(sa, sb)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		e.IntersectCount(sa, sb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCount(sa, sb)
		}
	})
}

func BenchmarkExecutorIntersect(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	b.Run("oneshot-sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += len(Intersect(sa, sb))
		}
	})
	b.Run("executor-into", func(b *testing.B) {
		e := NewExecutor()
		dst := make([]uint32, min(sa.Len(), sb.Len()))
		e.IntersectInto(dst, sa, sb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectInto(dst, sa, sb)
		}
	})
}

func BenchmarkExecutorCountK(b *testing.B) {
	sa, sb, sc := benchExecSets(b)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountK(sa, sb, sc)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		ks := []*Set{sa, sb, sc}
		e.IntersectCountK(ks...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountK(ks...)
		}
	})
}

// BenchmarkExecutorStatsOverhead pins the observability layer's cost
// contract on Executor.Count: with stats off the hot path pays a nil-check
// and nothing else (the off rows match the plain executor rows above), and
// with stats ON the overhead stays under 3% with exactly 0 allocs/op. The
// "on" executor records into a private sink so the comparison runs in one
// process without enabling stats globally.
//
// The sub-benchmarks run as sequential blocks, so on a machine with drifting
// background load the off/on deltas here can be swamped by drift; the
// reference numbers below were taken by pairing off and on batches
// back-to-back within each round and taking the median per-round ratio over
// 40 rounds (two independent runs quoted):
//
//	count-merge/off   ~648µs/op   0 B/op  0 allocs/op
//	count-merge/on    ~654µs/op   0 B/op  0 allocs/op   (+1.2% / +1.4%)
//	count-hash/off    ~80µs/op    0 B/op  0 allocs/op
//	count-hash/on     ~81µs/op    0 B/op  0 allocs/op   (+0.5% / +1.9%)
//
// The merge number depends on the kernel-histogram sampling in
// stats.KernelSampleRate: recording the per-pair (sizeA, sizeB) histogram on
// every query measured ~+10% on this workload, an order of magnitude over
// budget, which is why only 1 in KernelSampleRate merge queries record it
// (all scalar counters stay exact).
func BenchmarkExecutorStatsOverhead(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	rng := rand.New(rand.NewSource(99))
	small := MustBuild(execRandElems(rng, 20_000, 1<<22)) // skewed vs sa: hash strategy

	run := func(name string, e *Executor) {
		b.Run("count-merge/"+name, func(b *testing.B) {
			e.IntersectCount(sa, sb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += e.IntersectCount(sa, sb)
			}
		})
		b.Run("count-hash/"+name, func(b *testing.B) {
			e.IntersectCount(small, sa)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink += e.IntersectCount(small, sa)
			}
		})
	}
	off := NewExecutor()
	run("off", off)
	on := NewExecutor()
	on.inner.EnableStats(stats.New())
	run("on", on)
}

func BenchmarkExecutorCountParallel(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	workers := min(runtime.GOMAXPROCS(0), 4)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountParallel(sa, sb, workers)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		e.IntersectCountParallel(sa, sb, workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountParallel(sa, sb, workers)
		}
	})
}

func BenchmarkExecutorCountKParallel(b *testing.B) {
	sa, sb, sc := benchExecSets(b)
	workers := min(runtime.GOMAXPROCS(0), 4)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountKParallel(workers, sa, sb, sc)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		ks := []*Set{sa, sb, sc}
		e.IntersectCountKParallel(workers, ks...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountKParallel(workers, ks...)
		}
	})
}
