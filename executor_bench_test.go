// Benchmarks for the allocation-free query engine: each pair compares the
// one-shot package-level wrapper against a reused Executor on the same
// inputs, so `go test -bench=Executor -benchmem` shows what holding scratch
// state across queries buys (the executor rows should report 0 allocs/op).
package fesia

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchExecSets(b *testing.B) (sa, sb, sc *Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	sa = MustBuild(execRandElems(rng, 200_000, 1<<22))
	sb = MustBuild(execRandElems(rng, 200_000, 1<<22))
	sc = MustBuild(execRandElems(rng, 100_000, 1<<22))
	return sa, sb, sc
}

func BenchmarkExecutorCount(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCount(sa, sb)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		e.IntersectCount(sa, sb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCount(sa, sb)
		}
	})
}

func BenchmarkExecutorIntersect(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	b.Run("oneshot-sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += len(Intersect(sa, sb))
		}
	})
	b.Run("executor-into", func(b *testing.B) {
		e := NewExecutor()
		dst := make([]uint32, min(sa.Len(), sb.Len()))
		e.IntersectInto(dst, sa, sb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectInto(dst, sa, sb)
		}
	})
}

func BenchmarkExecutorCountK(b *testing.B) {
	sa, sb, sc := benchExecSets(b)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountK(sa, sb, sc)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		ks := []*Set{sa, sb, sc}
		e.IntersectCountK(ks...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountK(ks...)
		}
	})
}

func BenchmarkExecutorCountParallel(b *testing.B) {
	sa, sb, _ := benchExecSets(b)
	workers := min(runtime.GOMAXPROCS(0), 4)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountParallel(sa, sb, workers)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		e.IntersectCountParallel(sa, sb, workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountParallel(sa, sb, workers)
		}
	})
}

func BenchmarkExecutorCountKParallel(b *testing.B) {
	sa, sb, sc := benchExecSets(b)
	workers := min(runtime.GOMAXPROCS(0), 4)
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink += IntersectCountKParallel(workers, sa, sb, sc)
		}
	})
	b.Run("executor", func(b *testing.B) {
		e := NewExecutor()
		ks := []*Set{sa, sb, sc}
		e.IntersectCountKParallel(workers, ks...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink += e.IntersectCountKParallel(workers, ks...)
		}
	})
}
