// Benchmarks regenerating every table and figure of the FESIA paper's
// evaluation (one Benchmark function per table/figure). Run them all with
//
//	go test -bench=. -benchmem
//
// These use moderate input sizes so the full suite completes in minutes;
// cmd/fesiabench runs the same experiments at paper scale and prints the
// result tables. See EXPERIMENTS.md for recorded paper-vs-measured results.
package fesia

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/experiments"
	"fesia/internal/graph"
	"fesia/internal/icachesim"
	"fesia/internal/invindex"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

var benchSink int

// ---------------------------------------------------------------------------
// Figures 4-6: specialized vs general kernels per ISA width.
// ---------------------------------------------------------------------------

func benchKernels(b *testing.B, w simd.Width) {
	rng := rand.New(rand.NewSource(4))
	tbl := kernels.ForWidth(w)
	sizes := []struct{ sa, sb int }{
		{1, 1}, {1, tbl.Cap() / 2}, {2, 4}, {tbl.Cap() / 2, tbl.Cap() / 2},
		{tbl.Cap(), tbl.Cap()},
	}
	for _, sz := range sizes {
		if sz.sa == 0 || sz.sb == 0 {
			continue
		}
		as := make([][]uint32, 64)
		bs := make([][]uint32, 64)
		for i := range as {
			as[i], bs[i] = datasets.GenPair(rng, sz.sa, sz.sb,
				rng.Intn(min(sz.sa, sz.sb)+1), uint32(8*(sz.sa+sz.sb)))
		}
		b.Run(fmt.Sprintf("general/%dx%d", sz.sa, sz.sb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += kernels.GeneralCount(w, as[i%64], bs[i%64])
			}
		})
		b.Run(fmt.Sprintf("specialized/%dx%d", sz.sa, sz.sb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += tbl.Count(as[i%64], bs[i%64])
			}
		})
	}
}

func BenchmarkFig4SSEKernels(b *testing.B)    { benchKernels(b, simd.WidthSSE) }
func BenchmarkFig5AVXKernels(b *testing.B)    { benchKernels(b, simd.WidthAVX) }
func BenchmarkFig6AVX512Kernels(b *testing.B) { benchKernels(b, simd.WidthAVX512) }

// ---------------------------------------------------------------------------
// Figure 7: time vs input size at selectivity 1%.
// ---------------------------------------------------------------------------

func BenchmarkFig7VaryInputSize(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{100_000, 400_000, 1_600_000} {
		ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
		methods := experiments.BaselineMethods(simd.WidthAVX)
		for _, wcfg := range experiments.FESIAWidthConfigs() {
			methods = append(methods, experiments.FESIAMethod(wcfg.Name, wcfg.Cfg))
		}
		for _, m := range methods {
			op := m.Prepare(ea, eb)
			b.Run(fmt.Sprintf("n=%d/%s", n, m.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += op()
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 8-9: selectivity sweep at fixed size.
// ---------------------------------------------------------------------------

func benchSelectivity(b *testing.B, fesiaName string, cfg core.Config) {
	rng := rand.New(rand.NewSource(8))
	const n = 200_000
	for _, sel := range []float64{0, 0.01, 0.08, 0.64} {
		ea, eb := datasets.GenPairSelectivity(rng, n, n, sel, uint32(16*n))
		methods := experiments.BaselineMethods(cfg.Width)
		methods = append(methods, experiments.FESIAMethod(fesiaName, cfg))
		for _, m := range methods {
			op := m.Prepare(ea, eb)
			b.Run(fmt.Sprintf("sel=%.2f/%s", sel, m.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += op()
				}
			})
		}
	}
}

func BenchmarkFig8Selectivity(b *testing.B) {
	benchSelectivity(b, "FESIAavx", core.Config{Width: simd.WidthAVX})
}

func BenchmarkFig9SelectivityAVX512(b *testing.B) {
	benchSelectivity(b, "FESIAavx512", core.Config{Width: simd.WidthAVX512})
}

// ---------------------------------------------------------------------------
// Figure 10: three-way intersection vs density.
// ---------------------------------------------------------------------------

func BenchmarkFig10ThreeWay(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const n = 200_000
	for _, density := range []float64{0, 0.2, 0.8} {
		sets := datasets.GenGroup(rng, 3, n, density)
		kmethods := experiments.BaselineKMethods(simd.WidthAVX)
		kmethods = append(kmethods, experiments.FESIAKMethod("FESIA", core.Config{Width: simd.WidthAVX}))
		for _, m := range kmethods {
			op := m.Prepare(sets)
			b.Run(fmt.Sprintf("density=%.1f/%s", density, m.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += op()
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 11: skewed input sizes, both FESIA strategies.
// ---------------------------------------------------------------------------

func BenchmarkFig11Skew(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const n2 = 320_000
	cfg := core.Config{Width: simd.WidthAVX}
	for _, skew := range []float64{1.0 / 32, 1.0 / 4, 1} {
		n1 := int(float64(n2) * skew)
		ea, eb := datasets.GenPair(rng, n1, n2, n1/10, uint32(16*n2))
		methods := experiments.BaselineMethods(simd.WidthAVX)
		methods = append(methods,
			experiments.FESIAMethod("FESIAmerge", cfg),
			experiments.FESIAHashMethod("FESIAhash", cfg))
		for _, m := range methods {
			op := m.Prepare(ea, eb)
			b.Run(fmt.Sprintf("skew=%d-%d/%s", n1, n2, m.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += op()
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 12: the database query task over a WebDocs-like corpus.
// ---------------------------------------------------------------------------

func BenchmarkFig12DatabaseQuery(b *testing.B) {
	corpus := datasets.NewCorpus(datasets.CorpusConfig{
		NumDocs: 30_000, NumItems: 60_000, MeanLen: 40, Seed: 12,
	})
	ix, err := invindex.FromCorpus(corpus, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for _, k := range []int{2, 3} {
		queries := corpus.SampleQueries(rng, 16, k, 64, 0.2, 0)
		items := make([][]uint32, len(queries))
		lists := make([][][]uint32, len(queries))
		for i, q := range queries {
			items[i] = q.Items
			lists[i] = q.Postings
		}
		b.Run(fmt.Sprintf("%dsets/Scalar", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, l := range lists {
					benchSink += baselines.CountScalarK(l)
				}
			}
		})
		b.Run(fmt.Sprintf("%dsets/Shuffling", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, l := range lists {
					benchSink += baselines.CountShufflingK(simd.WidthAVX, l)
				}
			}
		})
		b.Run(fmt.Sprintf("%dsets/BMiss", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, l := range lists {
					benchSink += baselines.CountBMissK(l)
				}
			}
		})
		b.Run(fmt.Sprintf("%dsets/FESIA", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, it := range items {
					benchSink += ix.QueryCount(it...)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 13: triangle counting.
// ---------------------------------------------------------------------------

func BenchmarkFig13TriangleCounting(b *testing.B) {
	g := datasets.NewGraph(datasets.GraphConfig{
		Nodes: 30_000, EdgesPer: 8, Clustering: 0.5, Seed: 13,
	})
	oriented := graph.FromEdges(g.Nodes, g.Edges).Oriented()
	fg, err := graph.BuildFesia(oriented, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int(graph.CountTriangles(oriented, baselines.CountScalar))
		}
	})
	b.Run("Shuffling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int(graph.CountTriangles(oriented, func(x, y []uint32) int {
				return baselines.CountShuffling(simd.WidthAVX, x, y)
			}))
		}
	})
	b.Run("FESIA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int(fg.CountTriangles(1))
		}
	})
	b.Run("FESIA4core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int(fg.CountTriangles(4))
		}
	})
	b.Run("FESIA8core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink += int(fg.CountTriangles(8))
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 14: step 1 / step 2 breakdown vs bitmap and segment size.
// ---------------------------------------------------------------------------

func BenchmarkFig14Breakdown(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	const n = 50_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0, uint32(64*n))
	for _, scale := range []float64{4, 16, 32} {
		for _, segBits := range []int{8, 16} {
			cfg := core.Config{Width: simd.WidthAVX, Scale: scale, SegBits: segBits}
			sa := core.MustNewSet(ea, cfg)
			sb := core.MustNewSet(eb, cfg)
			b.Run(fmt.Sprintf("scale=%.0f/seg=%d", scale, segBits), func(b *testing.B) {
				var bitmapNs, segmentNs int64
				for i := 0; i < b.N; i++ {
					bd := core.CountMergeBreakdown(sa, sb)
					benchSink += bd.Count
					bitmapNs += bd.BitmapTime.Nanoseconds()
					segmentNs += bd.SegmentTime.Nanoseconds()
				}
				b.ReportMetric(float64(bitmapNs)/float64(b.N), "step1-ns/op")
				b.ReportMetric(float64(segmentNs)/float64(b.N), "step2-ns/op")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Table II: kernel library code size and modelled L1i misses per stride.
// ---------------------------------------------------------------------------

func BenchmarkTable2KernelStride(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 200_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	for _, stride := range []int{1, 4, 8} {
		// A dense bitmap (Scale 1.5) spreads dispatches across many kernel
		// sizes, the regime Table II's stride sampling addresses.
		cfg := core.Config{Width: simd.WidthAVX512, Stride: stride, Scale: 1.5}
		sa := core.MustNewSet(ea, cfg)
		sb := core.MustNewSet(eb, cfg)
		trace := core.DispatchTrace(sa, sb)
		layout := icachesim.NewLayout(kernels.ForStride(stride))
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			misses := 0
			for i := 0; i < b.N; i++ {
				cache := icachesim.New(32*1024, 64, 8)
				misses = layout.Replay(cache, trace)
				benchSink += misses
			}
			b.ReportMetric(float64(layout.CodeBytes()), "code-bytes")
			b.ReportMetric(float64(misses), "l1i-misses")
		})
		// The intersection itself must stay correct and fast per stride.
		b.Run(fmt.Sprintf("stride=%d/count", stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMerge(sa, sb)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table III: construction time.
// ---------------------------------------------------------------------------

func BenchmarkTable3Construction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	elems := make([]uint32, 100_000)
	for i := range elems {
		elems[i] = rng.Uint32()
	}
	b.Run("NewSet100k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.MustNewSet(elems, core.DefaultConfig())
			benchSink += s.Len()
		}
	})
	g := datasets.NewGraph(datasets.GraphConfig{Nodes: 20_000, EdgesPer: 6, Clustering: 0.4, Seed: 33})
	oriented := graph.FromEdges(g.Nodes, g.Edges).Oriented()
	b.Run("GraphSets20k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fg, err := graph.BuildFesia(oriented, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			benchSink += int(fg.CountTriangles(1)) % 2
		}
	})
}
