// Ablation benchmarks for the design choices the paper motivates:
//
//   - code specialization (Section V): dispatching to per-size kernels vs
//     always running the scalar generic kernel on surviving segment pairs;
//   - bitmap sizing (Section III-D): m = n·√w against smaller and larger
//     bitmaps, exposing the filter-cost/false-positive trade-off behind
//     Proposition 1;
//   - segment size (Fig. 14): s ∈ {8, 16, 32};
//   - adaptive strategy switching (Section VI): the skew-threshold switch
//     against always-merge and always-hash;
//   - kernel stride sampling (Section VI): run-time cost of rounding sizes
//     up to sampled kernels.
//
// Run with: go test -bench=Ablation -benchmem
package fesia

import (
	"fmt"
	"math/rand"
	"testing"

	"fesia/internal/baselines"
	"fesia/internal/core"
	"fesia/internal/datasets"
	"fesia/internal/experiments"
	"fesia/internal/kernels"
	"fesia/internal/simd"
)

// BenchmarkAblationSpecialization compares jump-table dispatch to
// specialized kernels against the generic scalar kernel over the same
// segment-size distribution the bitmap filter produces.
func BenchmarkAblationSpecialization(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	const n = 200_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	cfg := core.Config{Width: simd.WidthAVX}
	sa := core.MustNewSet(ea, cfg)
	sb := core.MustNewSet(eb, cfg)
	trace := core.DispatchTrace(sa, sb)

	// Rebuild the actual segment slices the dispatcher would see.
	type pair struct{ a, b []uint32 }
	pairs := make([]pair, 0, len(trace))
	segRNG := rand.New(rand.NewSource(32))
	for _, t := range trace {
		x, y := datasets.GenPair(segRNG, t[0], t[1],
			segRNG.Intn(min(t[0], t[1])+1), uint32(8*(t[0]+t[1]+2)))
		pairs = append(pairs, pair{x, y})
	}
	tbl := kernels.ForWidth(simd.WidthAVX)
	b.Run("specialized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				benchSink += tbl.Count(p.a, p.b)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				benchSink += kernels.GenericCount(p.a, p.b)
			}
		}
	})
}

// BenchmarkAblationFastVsFESIA isolates FESIA's SIMD design (segment
// transformation + specialized kernels) from the shared bitmap-pruning idea
// by comparing against Fast [4], its non-SIMD predecessor with the same
// O(n/√w + r) complexity (Table I).
func BenchmarkAblationFastVsFESIA(b *testing.B) {
	rng := rand.New(rand.NewSource(38))
	const n = 200_000
	for _, sel := range []float64{0, 0.01, 0.16} {
		ea, eb := datasets.GenPairSelectivity(rng, n, n, sel, uint32(16*n))
		methods := []experiments.PairMethod{
			experiments.ScalarMethod(),
			experiments.FastMethod(),
			experiments.FESIAMethod("FESIA", core.Config{Width: simd.WidthAVX}),
		}
		for _, m := range methods {
			op := m.Prepare(ea, eb)
			b.Run(fmt.Sprintf("sel=%.2f/%s", sel, m.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink += op()
				}
			})
		}
	}
}

// BenchmarkAblationHieraDensity exercises the Hiera [3] limitation the
// paper cites ("its effectiveness highly depends on the data distribution
// ... it downgrades to a scalar approach when the elements in input sets
// are sparse"): on sparse data every 16-bit bucket holds about one element
// and Hiera is scalar merge plus bucket overhead. (Hiera's dense-data win
// requires native STTNI throughput — one instruction per 8x8 block — which
// the one-op-per-comparison emulation deliberately does not grant any
// method; FESIA's advantage here is algorithmic and survives.)
func BenchmarkAblationHieraDensity(b *testing.B) {
	rng := rand.New(rand.NewSource(39))
	const n = 100_000
	for _, dense := range []bool{true, false} {
		universe := uint32(1 << 31)
		label := "sparse"
		if dense {
			universe = uint32(4 * n)
			label = "dense"
		}
		ea, eb := datasets.GenPair(rng, n, n, n/100, universe)
		ha, hb := baselines.NewHieraSet(ea), baselines.NewHieraSet(eb)
		b.Run(label+"/Hiera", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += baselines.CountHiera(ha, hb)
			}
		})
		b.Run(label+"/Scalar", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += baselines.CountScalar(ea, eb)
			}
		})
		fesiaOp := experiments.FESIAMethod("FESIA", core.Config{Width: simd.WidthAVX}).Prepare(ea, eb)
		b.Run(label+"/FESIA", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += fesiaOp()
			}
		})
	}
}

// BenchmarkAblationBitmapScale sweeps m/n around the paper's m = n·√w
// optimum (scale 16 for AVX).
func BenchmarkAblationBitmapScale(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	const n = 200_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	for _, scale := range []float64{1, 4, 16, 64, 256} {
		cfg := core.Config{Width: simd.WidthAVX, Scale: scale}
		sa := core.MustNewSet(ea, cfg)
		sb := core.MustNewSet(eb, cfg)
		b.Run(fmt.Sprintf("scale=%.0f", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMerge(sa, sb)
			}
		})
	}
}

// BenchmarkAblationSegBits sweeps the segment size at fixed bitmap size.
func BenchmarkAblationSegBits(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	const n = 200_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	for _, segBits := range []int{8, 16, 32} {
		cfg := core.Config{Width: simd.WidthAVX, SegBits: segBits}
		sa := core.MustNewSet(ea, cfg)
		sb := core.MustNewSet(eb, cfg)
		b.Run(fmt.Sprintf("s=%d", segBits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMerge(sa, sb)
			}
		})
	}
}

// BenchmarkAblationAdaptive compares the adaptive strategy against the two
// fixed strategies across the skew range.
func BenchmarkAblationAdaptive(b *testing.B) {
	rng := rand.New(rand.NewSource(35))
	const n2 = 200_000
	for _, skew := range []float64{1.0 / 64, 1.0 / 4, 1} {
		n1 := int(float64(n2) * skew)
		ea, eb := datasets.GenPair(rng, n1, n2, n1/10, uint32(16*n2))
		sa := core.MustNewSet(ea, core.DefaultConfig())
		sb := core.MustNewSet(eb, core.DefaultConfig())
		b.Run(fmt.Sprintf("skew=%.3f/adaptive", skew), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.Count(sa, sb)
			}
		})
		b.Run(fmt.Sprintf("skew=%.3f/merge", skew), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMerge(sa, sb)
			}
		})
		b.Run(fmt.Sprintf("skew=%.3f/hash", skew), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountHash(sa, sb)
			}
		})
	}
}

// BenchmarkAblationKernelStride measures the run-time cost of stride
// sampling (redundant comparisons from rounded-up kernels) that Table II's
// code-size savings buy.
func BenchmarkAblationKernelStride(b *testing.B) {
	rng := rand.New(rand.NewSource(36))
	const n = 200_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	for _, stride := range []int{1, 4, 8} {
		cfg := core.Config{Width: simd.WidthAVX512, Stride: stride}
		sa := core.MustNewSet(ea, cfg)
		sb := core.MustNewSet(eb, cfg)
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMerge(sa, sb)
			}
		})
	}
}

// BenchmarkAblationParallel measures bitmap-partitioned parallel scaling.
// (On a single-CPU host this shows goroutine overhead, not speedup; the
// partitioning itself is correctness-tested in internal/core.)
func BenchmarkAblationParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(37))
	const n = 1_000_000
	ea, eb := datasets.GenPairSelectivity(rng, n, n, 0.01, uint32(16*n))
	sa := core.MustNewSet(ea, core.DefaultConfig())
	sb := core.MustNewSet(eb, core.DefaultConfig())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink += core.CountMergeParallel(sa, sb, workers)
			}
		})
	}
}
